//! The Flat View: performance data correlated with static program
//! structure (Section III-C).
//!
//! All costs a procedure incurs in any calling context are aggregated onto
//! its static scope, presented in a hierarchy of load module → file →
//! procedure → loops / statements / inlined code, plus *dynamic* call-site
//! nodes that fuse a call site inside the procedure with its callee
//! (Fig. 2c's `gy/gz/gv/fy/hy` nodes).
//!
//! Aggregation is recursion-correct via set-exposed instance sums
//! (Section IV-B): `gx`'s inclusive cost in Fig. 2c is 9 — the same as the
//! Callers View top-level entry — not the 14 a naive sum over `g1,g2,g3`
//! would produce.
//!
//! The module also implements **flattening** (Section III-C): eliding a
//! layer of hierarchy so that, e.g., loops in different routines can be
//! compared directly.
//!
//! ## Lazy containers
//!
//! [`FlatView::build`] is *shell-first*, mirroring the lazy Callers View:
//! only the load-module → file → procedure skeleton is materialized (and
//! valued) eagerly; each procedure's interior — loops, statements,
//! inlined bodies, and fused call-site nodes — is filled on first expand
//! from the CCT instances recorded on the node. Container metrics don't
//! depend on the deferred children (a file's exclusive sums its child
//! *procedures'* exclusives), so the shell's numbers are final.
//! [`FlatView::flatten_once`]/[`FlatView::flatten`] force fills on
//! demand; the free [`flatten_once`]/[`flatten`] functions remain for
//! trees that are already fully forced.

use crate::experiment::Experiment;
use crate::exposure::exposed;
use crate::ids::{MetricId, ViewNodeId};
use crate::metrics::StorageKind;
use crate::scope::ScopeKind;
use crate::viewtree::{ViewScope, ViewTree};
use std::collections::HashMap;

/// Static (flat) view over an experiment, with lazily filled procedure
/// interiors (see the module docs).
#[derive(Debug, Clone)]
pub struct FlatView {
    /// The flat tree and its metric columns.
    pub tree: ViewTree,
}

impl FlatView {
    /// Build the Flat View shell from an attributed experiment: module,
    /// file, and procedure nodes with final metric values; everything
    /// inside procedures is deferred to [`FlatView::expand`].
    pub fn build(exp: &Experiment, storage: StorageKind) -> Self {
        let mut tree = ViewTree::new(storage);
        for d in exp.columns.descs() {
            tree.columns.add_column(d.clone());
        }

        // (parent, scope) -> node index, to avoid quadratic sibling scans.
        let mut index: HashMap<(Option<ViewNodeId>, ViewScope), ViewNodeId> = HashMap::new();
        let mut node_at =
            |tree: &mut ViewTree, parent: Option<ViewNodeId>, scope: ViewScope| -> ViewNodeId {
                *index
                    .entry((parent, scope))
                    .or_insert_with(|| match parent {
                        Some(p) => tree.add_child(p, scope),
                        None => tree.add_root(scope),
                    })
            };

        for n in exp.cct.all_nodes() {
            if let ScopeKind::Frame {
                proc, module, def, ..
            } = exp.cct.kind(n)
            {
                let m_node = node_at(&mut tree, None, ViewScope::Module { module });
                let f_node = node_at(&mut tree, Some(m_node), ViewScope::File { file: def.file });
                let p_node = node_at(&mut tree, Some(f_node), ViewScope::Procedure { proc });
                tree.push_instance(m_node, n);
                tree.push_instance(f_node, n);
                tree.push_instance(p_node, n);
            }
        }

        // The skeleton's child sets are complete: a module only ever
        // contains files, a file only procedures. Only procedure
        // interiors stay lazy.
        let all: Vec<ViewNodeId> = (0..tree.len() as u32).map(ViewNodeId).collect();
        for &v in &all {
            if !matches!(tree.scope(v), ViewScope::Procedure { .. }) {
                tree.mark_expanded(v);
            }
        }

        // Fill metric values: procedures first (instance aggregation),
        // then containers, whose exclusive column sums their child
        // procedures'/files' exclusives.
        for &v in &all {
            if matches!(tree.scope(v), ViewScope::Procedure { .. }) {
                Self::fill_from_instances(exp, &mut tree, v, false);
            }
        }
        for &v in all.iter() {
            if matches!(tree.scope(v), ViewScope::File { .. }) {
                Self::fill_container(exp, &mut tree, v);
            }
        }
        for &v in all.iter() {
            if matches!(tree.scope(v), ViewScope::Module { .. }) {
                Self::fill_container(exp, &mut tree, v);
            }
        }

        let n_nodes = tree.len();
        exp.eval_derived_into(&mut tree.columns, n_nodes);
        FlatView { tree }
    }

    /// Build the Flat View with every node materialized, as the
    /// pre-lazy implementation did: the shell plus [`FlatView::force_all`].
    pub fn build_eager(exp: &Experiment, storage: StorageKind) -> Self {
        let mut view = Self::build(exp, storage);
        view.force_all(exp);
        view
    }

    /// Materialize `v`'s children if they haven't been yet. Idempotent.
    ///
    /// Children are derived from the CCT children of `v`'s instances,
    /// visited in ascending CCT-node order — exactly the order the
    /// one-pass eager build would have created them in, so the lazy tree
    /// matches the eager tree node-for-node (per parent, in order).
    pub fn expand(&mut self, exp: &Experiment, v: ViewNodeId) {
        if self.tree.is_expanded(v) {
            return;
        }
        self.tree.mark_expanded(v);
        // Call-site nodes fuse a call site with its callee and stay
        // leaves: the callee's breakdown lives under the callee's own
        // procedure node.
        if matches!(self.tree.scope(v), ViewScope::CallSite { .. }) {
            return;
        }

        let instances: Vec<_> = self.tree.instances(v).to_vec();
        let mut pending: Vec<(u32, ViewScope)> = Vec::new();
        for &i in &instances {
            for c in exp.cct.children(i) {
                let scope = match exp.cct.kind(c) {
                    ScopeKind::Frame {
                        proc, call_site, ..
                    } => ViewScope::CallSite {
                        callee: proc,
                        loc: call_site,
                    },
                    ScopeKind::InlinedFrame {
                        proc, call_site, ..
                    } => ViewScope::Inlined {
                        callee: proc,
                        call_site,
                    },
                    ScopeKind::Loop { header } => ViewScope::Loop { header },
                    ScopeKind::Stmt { loc } => ViewScope::Stmt { loc },
                    ScopeKind::Root => unreachable!("the CCT root is never a child"),
                };
                pending.push((c.0, scope));
            }
        }
        // Ascending CCT id = the eager build's creation/instance order.
        pending.sort_unstable_by_key(|&(c, _)| c);

        let first_new = self.tree.len() as u32;
        for (c, scope) in pending {
            let child = self.tree.find_or_add_child(v, scope);
            self.tree.push_instance(child, crate::ids::NodeId(c));
        }
        for id in first_new..self.tree.len() as u32 {
            let child = ViewNodeId(id);
            let call_site = matches!(self.tree.scope(child), ViewScope::CallSite { .. });
            Self::fill_from_instances(exp, &mut self.tree, child, call_site);
        }
        let end = self.tree.len();
        exp.eval_derived_range(&mut self.tree.columns, first_new as usize, end);
    }

    /// Children of `v`, materializing them on first use.
    pub fn children_of(&mut self, exp: &Experiment, v: ViewNodeId) -> Vec<ViewNodeId> {
        self.expand(exp, v);
        self.tree.children(v)
    }

    /// Could `v` have children, without forcing a fill? (Used for the
    /// collapsed-row expansion marker.)
    pub fn can_expand(&self, exp: &Experiment, v: ViewNodeId) -> bool {
        if matches!(self.tree.scope(v), ViewScope::CallSite { .. }) {
            return false;
        }
        if self.tree.is_expanded(v) {
            return self.tree.has_children(v);
        }
        self.tree
            .instances(v)
            .iter()
            .any(|&i| exp.cct.children(i).next().is_some())
    }

    /// Force every deferred fill (the eager tree).
    pub fn force_all(&mut self, exp: &Experiment) {
        let mut stack = self.tree.roots();
        while let Some(n) = stack.pop() {
            self.expand(exp, n);
            stack.extend(self.tree.children(n));
        }
    }

    /// Forcing variant of the free [`flatten_once`]: scopes in `current`
    /// are expanded first, so flattening descends through not-yet-filled
    /// procedure interiors.
    pub fn flatten_once(&mut self, exp: &Experiment, current: &[ViewNodeId]) -> Vec<ViewNodeId> {
        let mut out = Vec::with_capacity(current.len());
        for &n in current {
            let kids = self.children_of(exp, n);
            if kids.is_empty() {
                out.push(n);
            } else {
                out.extend(kids);
            }
        }
        out
    }

    /// Forcing variant of the free [`flatten`]: apply
    /// [`FlatView::flatten_once`] `times` times, stopping at a fixed point.
    pub fn flatten(
        &mut self,
        exp: &Experiment,
        roots: &[ViewNodeId],
        times: usize,
    ) -> Vec<ViewNodeId> {
        let mut cur = roots.to_vec();
        for _ in 0..times {
            let next = self.flatten_once(exp, &cur);
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    /// Inclusive = set-exposed instance sum; exclusive = set-exposed sum of
    /// either the rule-1/rule-2 exclusive (static scopes) or the
    /// frame-direct cost (dynamic call-site nodes, cf. `hy = (4,0)` in
    /// Fig. 2c).
    fn fill_from_instances(exp: &Experiment, tree: &mut ViewTree, v: ViewNodeId, call_site: bool) {
        let keep = exposed(&exp.cct, tree.instances(v));
        for mi in 0..exp.raw.metric_count() {
            let m = MetricId::from_usize(mi);
            let attr = exp.attribution(m);
            let (mut incl, mut excl) = (0.0, 0.0);
            for &i in &keep {
                incl += attr.inclusive.get(i.0);
                excl += if call_site {
                    attr.frame_direct.get(i.0)
                } else {
                    attr.exclusive.get(i.0)
                };
            }
            if incl != 0.0 {
                tree.columns.set(exp.inclusive_col(m), v.0, incl);
            }
            if excl != 0.0 {
                tree.columns.set(exp.exclusive_col(m), v.0, excl);
            }
        }
    }

    /// Containers (file, module): inclusive from set-exposed instances,
    /// exclusive as the sum of child containers'/procedures' exclusives
    /// (`file2.e = gx.e + hx.e = 8` in Fig. 2c).
    fn fill_container(exp: &Experiment, tree: &mut ViewTree, v: ViewNodeId) {
        let keep = exposed(&exp.cct, tree.instances(v));
        let children = tree.children(v);
        for mi in 0..exp.raw.metric_count() {
            let m = MetricId::from_usize(mi);
            let attr = exp.attribution(m);
            let incl: f64 = keep.iter().map(|i| attr.inclusive.get(i.0)).sum();
            let ce = exp.exclusive_col(m);
            let excl: f64 = children
                .iter()
                .filter(|&&c| {
                    matches!(
                        tree.scope(c),
                        ViewScope::Procedure { .. } | ViewScope::File { .. }
                    )
                })
                .map(|&c| tree.columns.get(ce, c.0))
                .sum();
            if incl != 0.0 {
                tree.columns.set(exp.inclusive_col(m), v.0, incl);
            }
            if excl != 0.0 {
                tree.columns.set(ce, v.0, excl);
            }
        }
    }
}

/// One flattening step: replace every scope in `current` that has children
/// with its children; childless scopes stay. Repeated application strips
/// successive layers of hierarchy so that, e.g., all loops across all
/// routines end up side by side for direct comparison (Fig. 6).
pub fn flatten_once(tree: &ViewTree, current: &[ViewNodeId]) -> Vec<ViewNodeId> {
    let mut out = Vec::with_capacity(current.len());
    for &n in current {
        if tree.has_children(n) {
            out.extend(tree.children(n));
        } else {
            out.push(n);
        }
    }
    out
}

/// Apply `flatten_once` `times` times, stopping early at a fixed point.
pub fn flatten(tree: &ViewTree, roots: &[ViewNodeId], times: usize) -> Vec<ViewNodeId> {
    let mut cur = roots.to_vec();
    for _ in 0..times {
        let next = flatten_once(tree, &cur);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ColumnId, FileId};
    use crate::metrics::{MetricDesc, RawMetrics};
    use crate::names::{NameTable, SourceLoc};

    /// Same Fig. 1 experiment as the callers tests.
    fn fig1_experiment() -> Experiment {
        let mut names = NameTable::new();
        let file1 = names.file("file1.c");
        let file2 = names.file("file2.c");
        let module = names.module("a.out");
        let p_m = names.proc("m");
        let p_f = names.proc("f");
        let p_g = names.proc("g");
        let p_h = names.proc("h");
        let mut cct = crate::cct::Cct::new(names);
        let root = cct.root();
        let frame = |proc, def: (FileId, u32), cs: Option<(FileId, u32)>| ScopeKind::Frame {
            proc,
            module,
            def: SourceLoc::new(def.0, def.1),
            call_site: cs.map(|(f, l)| SourceLoc::new(f, l)),
        };
        let m = cct.add_child(root, frame(p_m, (file1, 6), None));
        let f = cct.add_child(m, frame(p_f, (file1, 1), Some((file1, 7))));
        let g1 = cct.add_child(f, frame(p_g, (file2, 2), Some((file1, 2))));
        let g2 = cct.add_child(g1, frame(p_g, (file2, 2), Some((file2, 3))));
        let h = cct.add_child(g2, frame(p_h, (file2, 7), Some((file2, 4))));
        let l1 = cct.add_child(
            h,
            ScopeKind::Loop {
                header: SourceLoc::new(file2, 8),
            },
        );
        let l2 = cct.add_child(
            l1,
            ScopeKind::Loop {
                header: SourceLoc::new(file2, 9),
            },
        );
        let g3 = cct.add_child(m, frame(p_g, (file2, 2), Some((file1, 8))));
        let stmt = |cct: &mut crate::cct::Cct, p, file, line| {
            cct.add_child(
                p,
                ScopeKind::Stmt {
                    loc: SourceLoc::new(file, line),
                },
            )
        };
        let s_f = stmt(&mut cct, f, file1, 2);
        let s_g1 = stmt(&mut cct, g1, file2, 3);
        let s_g2 = stmt(&mut cct, g2, file2, 4);
        let s_g3 = stmt(&mut cct, g3, file2, 3);
        let s_l2 = stmt(&mut cct, l2, file2, 9);

        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cost", "samples", 1.0));
        raw.add_cost(cyc, s_f, 1.0);
        raw.add_cost(cyc, s_g1, 1.0);
        raw.add_cost(cyc, s_g2, 1.0);
        raw.add_cost(cyc, s_g3, 3.0);
        raw.add_cost(cyc, s_l2, 4.0);
        Experiment::build(cct, raw, StorageKind::Dense)
    }

    fn val(view: &FlatView, n: ViewNodeId, col: u32) -> f64 {
        view.tree.columns.get(ColumnId(col), n.0)
    }

    fn find(
        view: &FlatView,
        exp: &Experiment,
        parent: Option<ViewNodeId>,
        label: &str,
    ) -> ViewNodeId {
        let candidates = match parent {
            Some(p) => view.tree.children(p),
            None => view.tree.roots(),
        };
        candidates
            .into_iter()
            .find(|&n| view.tree.label(n, &exp.cct.names) == label)
            .unwrap_or_else(|| panic!("no node labelled {label}"))
    }

    #[test]
    fn files_match_fig2c() {
        let exp = fig1_experiment();
        let view = FlatView::build(&exp, StorageKind::Dense);
        let module = find(&view, &exp, None, "a.out");
        let file1 = find(&view, &exp, Some(module), "file1.c");
        let file2 = find(&view, &exp, Some(module), "file2.c");
        assert_eq!(val(&view, file1, 0), 10.0, "file1 inclusive");
        assert_eq!(val(&view, file1, 1), 1.0, "file1 exclusive");
        assert_eq!(val(&view, file2, 0), 9.0, "file2 inclusive");
        assert_eq!(val(&view, file2, 1), 8.0, "file2 exclusive = gx.e + hx.e");
        // The module spans the whole program.
        assert_eq!(val(&view, module, 0), 10.0);
        assert_eq!(val(&view, module, 1), 9.0);
    }

    #[test]
    fn procedures_match_fig2c() {
        let exp = fig1_experiment();
        let view = FlatView::build(&exp, StorageKind::Dense);
        let module = find(&view, &exp, None, "a.out");
        let file1 = find(&view, &exp, Some(module), "file1.c");
        let file2 = find(&view, &exp, Some(module), "file2.c");
        let gx = find(&view, &exp, Some(file2), "g");
        let hx = find(&view, &exp, Some(file2), "h");
        let fx = find(&view, &exp, Some(file1), "f");
        let mx = find(&view, &exp, Some(file1), "m");
        assert_eq!((val(&view, gx, 0), val(&view, gx, 1)), (9.0, 4.0), "gx");
        assert_eq!((val(&view, hx, 0), val(&view, hx, 1)), (4.0, 4.0), "hx");
        assert_eq!((val(&view, fx, 0), val(&view, fx, 1)), (7.0, 1.0), "fx");
        assert_eq!((val(&view, mx, 0), val(&view, mx, 1)), (10.0, 0.0), "m");
    }

    #[test]
    fn loops_match_fig2c() {
        let exp = fig1_experiment();
        let view = FlatView::build_eager(&exp, StorageKind::Dense);
        let module = find(&view, &exp, None, "a.out");
        let file2 = find(&view, &exp, Some(module), "file2.c");
        let hx = find(&view, &exp, Some(file2), "h");
        let l1 = find(&view, &exp, Some(hx), "loop at file2.c:8");
        let l2 = find(&view, &exp, Some(l1), "loop at file2.c:9");
        assert_eq!((val(&view, l1, 0), val(&view, l1, 1)), (4.0, 0.0), "l1");
        assert_eq!((val(&view, l2, 0), val(&view, l2, 1)), (4.0, 4.0), "l2");
    }

    #[test]
    fn call_site_nodes_match_fig2c() {
        let exp = fig1_experiment();
        let view = FlatView::build_eager(&exp, StorageKind::Dense);
        let module = find(&view, &exp, None, "a.out");
        let file1 = find(&view, &exp, Some(module), "file1.c");
        let file2 = find(&view, &exp, Some(module), "file2.c");
        let gx = find(&view, &exp, Some(file2), "g");
        let fx = find(&view, &exp, Some(file1), "f");
        let mx = find(&view, &exp, Some(file1), "m");

        // gy: call of g from f = g1 (6,1).
        let gy = view
            .tree
            .children(fx)
            .into_iter()
            .find(|&n| view.tree.scope(n).is_call())
            .expect("fx has a call site child");
        assert_eq!((val(&view, gy, 0), val(&view, gy, 1)), (6.0, 1.0), "gy");

        // Under m: fy (7,1) and gv (3,3).
        let m_calls: Vec<ViewNodeId> = view
            .tree
            .children(mx)
            .into_iter()
            .filter(|&n| view.tree.scope(n).is_call())
            .collect();
        assert_eq!(m_calls.len(), 2);
        let fy = m_calls
            .iter()
            .copied()
            .find(|&n| view.tree.label(n, &exp.cct.names) == "f")
            .unwrap();
        let gv = m_calls
            .iter()
            .copied()
            .find(|&n| view.tree.label(n, &exp.cct.names) == "g")
            .unwrap();
        assert_eq!((val(&view, fy, 0), val(&view, fy, 1)), (7.0, 1.0), "fy");
        assert_eq!((val(&view, gv, 0), val(&view, gv, 1)), (3.0, 3.0), "gv");

        // Under gx: gz (5,1) recursive call, hy (4,0) whose statements all
        // live inside loops.
        let g_calls: Vec<ViewNodeId> = view
            .tree
            .children(gx)
            .into_iter()
            .filter(|&n| view.tree.scope(n).is_call())
            .collect();
        assert_eq!(g_calls.len(), 2);
        let gz = g_calls
            .iter()
            .copied()
            .find(|&n| view.tree.label(n, &exp.cct.names) == "g")
            .unwrap();
        let hy = g_calls
            .iter()
            .copied()
            .find(|&n| view.tree.label(n, &exp.cct.names) == "h")
            .unwrap();
        assert_eq!((val(&view, gz, 0), val(&view, gz, 1)), (5.0, 1.0), "gz");
        assert_eq!((val(&view, hy, 0), val(&view, hy, 1)), (4.0, 0.0), "hy");
    }

    #[test]
    fn flatten_strips_hierarchy_layers() {
        let exp = fig1_experiment();
        let mut view = FlatView::build(&exp, StorageKind::Dense);
        let roots = view.tree.roots();
        assert_eq!(roots.len(), 1, "one load module");
        let files = view.flatten_once(&exp, &roots);
        assert_eq!(files.len(), 2);
        let procs = view.flatten_once(&exp, &files);
        let labels: Vec<String> = procs
            .iter()
            .map(|&n| view.tree.label(n, &exp.cct.names))
            .collect();
        assert!(labels.contains(&"g".to_owned()));
        assert!(labels.contains(&"h".to_owned()));
        assert!(labels.contains(&"f".to_owned()));
        assert!(labels.contains(&"m".to_owned()));
    }

    #[test]
    fn flatten_keeps_leaves() {
        let exp = fig1_experiment();
        let view = FlatView::build_eager(&exp, StorageKind::Dense);
        let deep = flatten(&view.tree, &view.tree.roots(), 100);
        // Fixed point: every element is a leaf.
        assert!(deep.iter().all(|&n| !view.tree.has_children(n)));
        let again = flatten_once(&view.tree, &deep);
        assert_eq!(again, deep);
    }

    #[test]
    fn recursion_does_not_double_count_inclusive() {
        let exp = fig1_experiment();
        let view = FlatView::build(&exp, StorageKind::Dense);
        let module = find(&view, &exp, None, "a.out");
        // Root-level (module) inclusive equals program total despite the
        // recursive g chain.
        assert_eq!(val(&view, module, 0), 10.0);
    }

    #[test]
    fn shell_defers_procedure_interiors() {
        let exp = fig1_experiment();
        let shell = FlatView::build(&exp, StorageKind::Dense);
        // 1 module + 2 files + 4 procedures, nothing inside procedures yet.
        assert_eq!(shell.tree.len(), 7);
        for v in (0..shell.tree.len() as u32).map(ViewNodeId) {
            match shell.tree.scope(v) {
                ViewScope::Procedure { .. } => {
                    assert!(!shell.tree.is_expanded(v));
                    assert!(!shell.tree.has_children(v));
                }
                _ => assert!(shell.tree.is_expanded(v)),
            }
        }
        let eager = FlatView::build_eager(&exp, StorageKind::Dense);
        assert!(eager.tree.len() > shell.tree.len());
    }

    #[test]
    fn lazy_fills_are_idempotent() {
        let exp = fig1_experiment();
        let mut view = FlatView::build(&exp, StorageKind::Dense);
        let module = find(&view, &exp, None, "a.out");
        let file2 = find(&view, &exp, Some(module), "file2.c");
        let gx = find(&view, &exp, Some(file2), "g");
        let first = view.children_of(&exp, gx);
        let len_after_first = view.tree.len();
        let gen_after_first = view.tree.generation();
        let second = view.children_of(&exp, gx);
        assert_eq!(first, second, "expanding twice yields the same children");
        assert_eq!(view.tree.len(), len_after_first, "no duplicate nodes");
        assert_eq!(
            view.tree.generation(),
            gen_after_first,
            "a no-op expand must not invalidate caches"
        );
    }

    /// The lazy tree, however it gets forced, must match the fully eager
    /// tree position-for-position: same scopes, same child order, same
    /// column values. Node *ids* may differ (creation order depends on
    /// which parent was forced first), so compare recursively by position.
    fn assert_same_forest(a: &FlatView, b: &FlatView) {
        fn assert_same_subtree(a: &FlatView, b: &FlatView, na: ViewNodeId, nb: ViewNodeId) {
            assert_eq!(a.tree.scope(na), b.tree.scope(nb));
            for c in 0..a.tree.columns.column_count() {
                let c = ColumnId::from_usize(c);
                assert_eq!(
                    a.tree.columns.get(c, na.0),
                    b.tree.columns.get(c, nb.0),
                    "column {c:?} at {:?}",
                    a.tree.scope(na)
                );
            }
            let ca = a.tree.children(na);
            let cb = b.tree.children(nb);
            assert_eq!(ca.len(), cb.len(), "children of {:?}", a.tree.scope(na));
            for (&x, &y) in ca.iter().zip(cb.iter()) {
                assert_same_subtree(a, b, x, y);
            }
        }
        let ra = a.tree.roots();
        let rb = b.tree.roots();
        assert_eq!(ra.len(), rb.len());
        for (&x, &y) in ra.iter().zip(rb.iter()) {
            assert_same_subtree(a, b, x, y);
        }
    }

    #[test]
    fn forced_lazy_tree_matches_eager_tree() {
        let exp = fig1_experiment();
        let mut lazy = FlatView::build(&exp, StorageKind::Dense);
        // Force in a deliberately different order than force_all: flatten
        // level by level to a fixed point.
        let mut cur = lazy.tree.roots();
        loop {
            let next = lazy.flatten_once(&exp, &cur);
            if next == cur {
                break;
            }
            cur = next;
        }
        let eager = FlatView::build_eager(&exp, StorageKind::Dense);
        assert_eq!(lazy.tree.len(), eager.tree.len());
        assert_same_forest(&lazy, &eager);
    }

    #[test]
    fn forcing_flatten_on_unforced_tree_matches_eager_flatten() {
        let exp = fig1_experiment();
        let mut lazy = FlatView::build(&exp, StorageKind::Dense);
        let eager = FlatView::build_eager(&exp, StorageKind::Dense);
        for level in 0..6 {
            let from_lazy = lazy.flatten(&exp, &lazy.tree.roots(), level);
            let from_eager = flatten(&eager.tree, &eager.tree.roots(), level);
            let labels = |view: &FlatView, nodes: &[ViewNodeId]| -> Vec<(String, f64, f64)> {
                nodes
                    .iter()
                    .map(|&n| {
                        (
                            view.tree.label(n, &exp.cct.names),
                            val(view, n, 0),
                            val(view, n, 1),
                        )
                    })
                    .collect()
            };
            assert_eq!(
                labels(&lazy, &from_lazy),
                labels(&eager, &from_eager),
                "flatten level {level}"
            );
        }
    }
}
