//! Derived metrics: spreadsheet-like formulas over metric columns
//! (Section V-D).
//!
//! A derived metric is defined by a formula that refers to other columns
//! with `$n` (the value of column *n* at the current scope) and `@n` (the
//! aggregate/root value of column *n*, convenient for "percent of total"
//! metrics). The paper's running example is floating-point **waste**:
//!
//! ```text
//! waste = $cyc * peak_flops_per_cycle - $fp_ops
//! ```
//!
//! and its companion **relative efficiency** `$fp_ops / ($cyc * peak)`.
//!
//! The grammar (implemented by a hand-written recursive-descent parser):
//!
//! ```text
//! expr    := term  (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := unary ('^' factor)?                 // right-associative
//! unary   := '-' unary | primary
//! primary := NUMBER | '$' INT | '@' INT
//!          | IDENT '(' expr (',' expr)* ')'
//!          | '(' expr ')'
//! ```
//!
//! Functions: `min`, `max` (n-ary), `sqrt`, `abs`, `ln`, `exp`, `floor`,
//! `ceil`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parsed formula AST.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A numeric literal.
    Num(f64),
    /// `$n`: per-scope value of column n.
    Col(u32),
    /// `@n`: aggregate (root) value of column n.
    Agg(u32),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division (yields 0 on a zero divisor — see [`Expr::eval`]).
    Div(Box<Expr>, Box<Expr>),
    /// Exponentiation (right-associative).
    Pow(Box<Expr>, Box<Expr>),
    /// A built-in function application.
    Call(Func, Vec<Expr>),
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Func {
    /// N-ary minimum.
    Min,
    /// N-ary maximum.
    Max,
    /// Square root (clamped at 0 for negative inputs).
    Sqrt,
    /// Absolute value.
    Abs,
    /// Natural log (0 for non-positive inputs).
    Ln,
    /// Exponential.
    Exp,
    /// Round toward negative infinity.
    Floor,
    /// Round toward positive infinity.
    Ceil,
}

impl Func {
    fn from_name(name: &str) -> Option<Func> {
        Some(match name {
            "min" => Func::Min,
            "max" => Func::Max,
            "sqrt" => Func::Sqrt,
            "abs" => Func::Abs,
            "ln" => Func::Ln,
            "exp" => Func::Exp,
            "floor" => Func::Floor,
            "ceil" => Func::Ceil,
            _ => return None,
        })
    }

    fn arity_ok(self, n: usize) -> bool {
        match self {
            Func::Min | Func::Max => n >= 1,
            _ => n == 1,
        }
    }
}

impl fmt::Display for Expr {
    /// Pretty-print with minimal parentheses; `Expr::parse ∘ to_string` is
    /// the identity on the AST (property-tested).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl Expr {
    /// Precedence levels: 0 add/sub, 1 mul/div, 2 pow, 3 unary/primary.
    fn prec(&self) -> u8 {
        match self {
            Expr::Add(..) | Expr::Sub(..) => 0,
            Expr::Mul(..) | Expr::Div(..) => 1,
            Expr::Pow(..) => 2,
            Expr::Neg(..) => 3,
            _ => 4,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
        let prec = self.prec();
        let paren = prec < min;
        if paren {
            write!(f, "(")?;
        }
        match self {
            Expr::Num(v) => write!(f, "{v}")?,
            Expr::Col(i) => write!(f, "${i}")?,
            Expr::Agg(i) => write!(f, "@{i}")?,
            Expr::Neg(e) => {
                write!(f, "-")?;
                e.fmt_prec(f, 4)?;
            }
            Expr::Add(a, b) => {
                a.fmt_prec(f, 0)?;
                write!(f, " + ")?;
                // Right operand needs one level more to keep left
                // associativity unambiguous (a - (b + c) etc.).
                b.fmt_prec(f, 1)?;
            }
            Expr::Sub(a, b) => {
                a.fmt_prec(f, 0)?;
                write!(f, " - ")?;
                b.fmt_prec(f, 1)?;
            }
            Expr::Mul(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " * ")?;
                b.fmt_prec(f, 2)?;
            }
            Expr::Div(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " / ")?;
                b.fmt_prec(f, 2)?;
            }
            Expr::Pow(a, b) => {
                // Right-associative: the base needs more than pow level.
                a.fmt_prec(f, 3)?;
                write!(f, " ^ ")?;
                b.fmt_prec(f, 2)?;
            }
            Expr::Call(func, args) => {
                let name = match func {
                    Func::Min => "min",
                    Func::Max => "max",
                    Func::Sqrt => "sqrt",
                    Func::Abs => "abs",
                    Func::Ln => "ln",
                    Func::Exp => "exp",
                    Func::Floor => "floor",
                    Func::Ceil => "ceil",
                };
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")?;
            }
        }
        if paren {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Formula parse/analysis error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormulaError {
    /// Byte offset of the error in the formula source.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "formula error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for FormulaError {}

/// Values a formula reads: per-scope column values and column aggregates.
pub trait EvalContext {
    /// Per-scope value of column `idx`.
    fn column(&self, idx: u32) -> f64;
    /// Whole-program (`@`) value of column `idx`.
    fn aggregate(&self, idx: u32) -> f64;
}

/// Convenience context backed by two slices.
pub struct SliceContext<'a> {
    /// Per-scope column values, indexed by column id.
    pub columns: &'a [f64],
    /// Column aggregates, indexed by column id.
    pub aggregates: &'a [f64],
}

impl EvalContext for SliceContext<'_> {
    fn column(&self, idx: u32) -> f64 {
        self.columns.get(idx as usize).copied().unwrap_or(0.0)
    }

    fn aggregate(&self, idx: u32) -> f64 {
        self.aggregates.get(idx as usize).copied().unwrap_or(0.0)
    }
}

impl Expr {
    /// Parse a formula.
    pub fn parse(src: &str) -> Result<Expr, FormulaError> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("unexpected trailing input"));
        }
        Ok(e)
    }

    /// Evaluate against a context. Division by zero yields 0 rather than
    /// infinity: a ratio over an absent (zero) metric means "no data", and
    /// propagating infinities would wreck sorting and summaries.
    pub fn eval(&self, ctx: &dyn EvalContext) -> f64 {
        match self {
            Expr::Num(v) => *v,
            Expr::Col(i) => ctx.column(*i),
            Expr::Agg(i) => ctx.aggregate(*i),
            Expr::Neg(e) => -e.eval(ctx),
            Expr::Add(a, b) => a.eval(ctx) + b.eval(ctx),
            Expr::Sub(a, b) => a.eval(ctx) - b.eval(ctx),
            Expr::Mul(a, b) => a.eval(ctx) * b.eval(ctx),
            Expr::Div(a, b) => {
                let d = b.eval(ctx);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(ctx) / d
                }
            }
            Expr::Pow(a, b) => a.eval(ctx).powf(b.eval(ctx)),
            Expr::Call(f, args) => {
                let vals: Vec<f64> = args.iter().map(|a| a.eval(ctx)).collect();
                match f {
                    Func::Min => vals.iter().cloned().fold(f64::INFINITY, f64::min),
                    Func::Max => vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    Func::Sqrt => vals[0].max(0.0).sqrt(),
                    Func::Abs => vals[0].abs(),
                    Func::Ln => {
                        if vals[0] > 0.0 {
                            vals[0].ln()
                        } else {
                            0.0
                        }
                    }
                    Func::Exp => vals[0].exp(),
                    Func::Floor => vals[0].floor(),
                    Func::Ceil => vals[0].ceil(),
                }
            }
        }
    }

    /// Every `$n` / `@n` column index the formula references. Used to
    /// validate that a derived metric only refers to existing columns and to
    /// order evaluation of chained derived metrics.
    pub fn references(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_refs(&self, out: &mut Vec<u32>) {
        match self {
            Expr::Num(_) => {}
            Expr::Col(i) | Expr::Agg(i) => out.push(*i),
            Expr::Neg(e) => e.collect_refs(out),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Pow(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_refs(out);
                }
            }
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> FormulaError {
        FormulaError {
            pos: self.pos,
            message: msg.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            self.skip_ws();
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<Expr, FormulaError> {
        let mut lhs = self.term()?;
        loop {
            if self.eat(b'+') {
                let rhs = self.term()?;
                lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat(b'-') {
                let rhs = self.term()?;
                lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, FormulaError> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat(b'*') {
                let rhs = self.factor()?;
                lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
            } else if self.eat(b'/') {
                let rhs = self.factor()?;
                lhs = Expr::Div(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, FormulaError> {
        let base = self.unary()?;
        if self.eat(b'^') {
            let exp = self.factor()?; // right-associative
            return Ok(Expr::Pow(Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr, FormulaError> {
        if self.eat(b'-') {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, FormulaError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                self.skip_ws();
                let e = self.expr()?;
                if !self.eat(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            Some(b'$') => {
                self.pos += 1;
                Ok(Expr::Col(self.integer()?))
            }
            Some(b'@') => {
                self.pos += 1;
                Ok(Expr::Agg(self.integer()?))
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.call(),
            _ => Err(self.err("expected a number, '$n', '@n', function or '('")),
        }
    }

    fn integer(&mut self) -> Result<u32, FormulaError> {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a column index"));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let v = text
            .parse::<u32>()
            .map_err(|_| self.err("column index out of range"))?;
        self.skip_ws();
        Ok(v)
    }

    fn number(&mut self) -> Result<Expr, FormulaError> {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit()
                || self.src[self.pos] == b'.'
                || self.src[self.pos] == b'e'
                || self.src[self.pos] == b'E'
                || ((self.src[self.pos] == b'+' || self.src[self.pos] == b'-')
                    && self.pos > start
                    && matches!(self.src[self.pos - 1], b'e' | b'E')))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let v = text
            .parse::<f64>()
            .map_err(|_| self.err("malformed number"))?;
        self.skip_ws();
        Ok(Expr::Num(v))
    }

    fn call(&mut self) -> Result<Expr, FormulaError> {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_owned();
        self.skip_ws();
        let func = Func::from_name(&name)
            .ok_or_else(|| self.err(&format!("unknown function '{name}'")))?;
        if !self.eat(b'(') {
            return Err(self.err("expected '(' after function name"));
        }
        let mut args = vec![self.expr()?];
        while self.eat(b',') {
            args.push(self.expr()?);
        }
        if !self.eat(b')') {
            return Err(self.err("expected ')'"));
        }
        if !func.arity_ok(args.len()) {
            return Err(self.err(&format!("wrong number of arguments for '{name}'")));
        }
        Ok(Expr::Call(func, args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str, cols: &[f64]) -> f64 {
        let aggs: Vec<f64> = cols.iter().map(|c| c * 100.0).collect();
        Expr::parse(src).unwrap().eval(&SliceContext {
            columns: cols,
            aggregates: &aggs,
        })
    }

    #[test]
    fn precedence_and_associativity() {
        assert_eq!(eval("1+2*3", &[]), 7.0);
        assert_eq!(eval("(1+2)*3", &[]), 9.0);
        assert_eq!(eval("2^3^2", &[]), 512.0, "pow is right-associative");
        assert_eq!(eval("10-3-2", &[]), 5.0, "sub is left-associative");
        assert_eq!(eval("8/4/2", &[]), 1.0);
        assert_eq!(eval("-2^2", &[]), 4.0, "unary binds the base");
    }

    #[test]
    fn column_and_aggregate_refs() {
        assert_eq!(eval("$0 + $1", &[3.0, 4.0]), 7.0);
        assert_eq!(eval("$1 / @1", &[0.0, 5.0]), 5.0 / 500.0);
        assert_eq!(eval("$9", &[1.0]), 0.0, "missing columns read as zero");
    }

    #[test]
    fn waste_metric_formula() {
        // waste = cycles * peak_flops_per_cycle - fp_ops
        let cols = [1000.0, 800.0]; // $0 = cycles, $1 = fp ops
        assert_eq!(eval("$0 * 4 - $1", &cols), 3200.0);
        // relative efficiency = fp_ops / (cycles * peak)
        assert!((eval("$1 / ($0 * 4)", &cols) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn functions() {
        assert_eq!(eval("min(3, 1, 2)", &[]), 1.0);
        assert_eq!(eval("max($0, 10)", &[3.0]), 10.0);
        assert_eq!(eval("sqrt(16)", &[]), 4.0);
        assert_eq!(eval("abs(-5)", &[]), 5.0);
        assert_eq!(eval("floor(2.7) + ceil(2.1)", &[]), 5.0);
        assert!((eval("ln(exp(1))", &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        assert_eq!(eval("1/0", &[]), 0.0);
        assert_eq!(eval("$0 / $1", &[5.0, 0.0]), 0.0);
    }

    #[test]
    fn guarded_math_functions() {
        assert_eq!(eval("sqrt(0-4)", &[]), 0.0);
        assert_eq!(eval("ln(0)", &[]), 0.0);
    }

    #[test]
    fn scientific_literals() {
        assert_eq!(eval("1e3 + 2.5E-1", &[]), 1000.25);
    }

    #[test]
    fn whitespace_tolerant() {
        assert_eq!(eval("  $0   *  ( 2 + 3 ) ", &[2.0]), 10.0);
    }

    #[test]
    fn parse_errors() {
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("(1").is_err());
        assert!(Expr::parse("$").is_err());
        assert!(Expr::parse("foo(1)").is_err());
        assert!(Expr::parse("sqrt(1,2)").is_err(), "arity check");
        assert!(Expr::parse("1 2").is_err(), "trailing input");
    }

    #[test]
    fn references_collects_all_columns() {
        let e = Expr::parse("$3 + @1 * min($3, $0)").unwrap();
        assert_eq!(e.references(), vec![0, 1, 3]);
    }

    #[test]
    fn ast_roundtrips_through_parse() {
        let e = Expr::parse("$0*4 - $1").unwrap();
        assert_eq!(
            e,
            Expr::Sub(
                Box::new(Expr::Mul(Box::new(Expr::Col(0)), Box::new(Expr::Num(4.0)))),
                Box::new(Expr::Col(1)),
            )
        );
    }
}
