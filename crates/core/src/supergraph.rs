//! The union-supergraph core: deterministic N-way merge of calling
//! context trees by journal replay.
//!
//! `prof::parallel` (PR 7) merges *rank shards* of one execution;
//! `diff` merges exactly two experiments. Both reduce to the same
//! primitive — replay a pruned creation journal of one tree against
//! another, translating scope kinds **by name** — and the ensemble
//! path (DESIGN.md §15) needs it for N arbitrary runs. This module
//! factors that primitive out:
//!
//! * [`arena_journal`] derives the pruned journal of any loaded CCT
//!   from its arena order (arena order *is* creation order, parents
//!   precede children — see [`crate::cct`]);
//! * [`translate_kind`] rewrites a [`ScopeKind`] from one name table
//!   into another, interning on demand. Within one namespace the
//!   intern order is proc, then module, then definition file, then
//!   call-site file — the same order `diff`'s merge has always used,
//!   so rebasing `diff` on this module is byte-identical;
//! * [`replay_into`] replays a journal into a destination shard,
//!   returning the node remap table;
//! * [`CctShard`] pairs a CCT + journal with an arbitrary payload that
//!   knows how to remap itself ([`RemapNodes`]), so the same pairwise
//!   merge carries per-rank costs (prof) or per-run columns (ensemble).
//!
//! ## Determinism
//!
//! [`merge_shards`] is written for [`crate::pool::reduce_pairwise`]:
//! it always extends the *left* shard in the *right* journal's order,
//! so any pairwise reduction tree that keeps left-to-right operand
//! order produces the same result as the sequential fold — same node
//! ids, same name-table intern order, bit for bit. Folding every shard
//! into a **fresh empty shard** (rather than mutating shard 0 in
//! place) makes the result independent of any one input's stored
//! name-table ordering or unreferenced names.

use crate::cct::Cct;
use crate::ids::NodeId;
use crate::names::{NameTable, SourceLoc};
use crate::scope::ScopeKind;

/// Rewrite `kind` from `src` names into `names`, interning on demand.
///
/// Intern order within each namespace is fixed (proc, module, def
/// file, call-site file, in field order) so that two folds seeing the
/// same kind sequence build the same name table.
pub fn translate_kind(names: &mut NameTable, src: &NameTable, k: &ScopeKind) -> ScopeKind {
    let loc = |names: &mut NameTable, l: SourceLoc| {
        SourceLoc::new(names.file(src.file_name(l.file)), l.line)
    };
    match *k {
        ScopeKind::Root => ScopeKind::Root,
        ScopeKind::Frame {
            proc,
            module,
            def,
            call_site,
        } => ScopeKind::Frame {
            proc: names.proc(src.proc_name(proc)),
            module: names.module(src.module_name(module)),
            def: loc(names, def),
            call_site: call_site.map(|c| loc(names, c)),
        },
        ScopeKind::InlinedFrame {
            proc,
            def,
            call_site,
        } => ScopeKind::InlinedFrame {
            proc: names.proc(src.proc_name(proc)),
            def: loc(names, def),
            call_site: loc(names, call_site),
        },
        ScopeKind::Loop { header } => ScopeKind::Loop {
            header: loc(names, header),
        },
        ScopeKind::Stmt { loc: l } => ScopeKind::Stmt { loc: loc(names, l) },
    }
}

/// The pruned creation journal of a loaded CCT: every non-root node
/// once, as `(parent, node)`, in arena (= creation) order. Replaying
/// it against an empty tree rebuilds `cct` with identical ids.
pub fn arena_journal(cct: &Cct) -> Vec<(NodeId, NodeId)> {
    cct.all_nodes()
        .skip(1)
        .map(|n| (cct.parent(n).expect("non-root node has a parent"), n))
        .collect()
}

/// Replay `journal` (edges over `src`) into `dst`, translating scope
/// kinds from `src.names` into `dst`'s name table and extending
/// `dst_journal` with the edges that created new nodes. Returns the
/// remap table: `remap[src node] = dst node` for every node the
/// journal mentions (untouched slots stay `NodeId(u32::MAX)`).
///
/// `dst`'s existing node ids are stable across the call; new nodes are
/// appended in `journal` order — exactly where a sequential fold that
/// had processed `dst`'s inputs first would have put them.
pub fn replay_into(
    dst: &mut Cct,
    dst_journal: &mut Vec<(NodeId, NodeId)>,
    src: &Cct,
    journal: &[(NodeId, NodeId)],
) -> Vec<NodeId> {
    let mut remap: Vec<NodeId> = vec![NodeId(u32::MAX); src.len()];
    remap[src.root().index()] = dst.root();
    for &(parent, child) in journal {
        let merged_parent = remap[parent.index()];
        debug_assert_ne!(
            merged_parent.0,
            u32::MAX,
            "journal references unseen parent"
        );
        // The name table is moved out for the duration of the kind
        // translation so `dst` itself stays borrowable.
        let mut names = std::mem::take(&mut dst.names);
        let kind = translate_kind(&mut names, &src.names, &src.kind(child));
        dst.names = names;
        let (merged_child, created) = dst.find_or_add_child_tracked(merged_parent, kind);
        remap[child.index()] = merged_child;
        if created {
            dst_journal.push((merged_parent, merged_child));
        }
    }
    remap
}

/// Payloads carried through a shard merge: anything holding node ids
/// that must be rewritten when its shard's nodes land in a merged tree.
pub trait RemapNodes {
    /// Rewrite every node id through `map` (`map[old.index()] = new`).
    fn remap_nodes(&mut self, map: &[NodeId]);
}

/// A mergeable unit: a CCT, the pruned journal that rebuilds it, and
/// payloads in its local node ids.
pub struct CctShard<P> {
    /// The shard's tree.
    pub cct: Cct,
    /// First-appearance `(parent, child)` edges in creation order:
    /// every non-root node of `cct` exactly once, after its parent.
    pub journal: Vec<(NodeId, NodeId)>,
    /// Per-input payloads (per-rank costs, per-run columns, ...), each
    /// in this shard's node ids.
    pub payload: Vec<P>,
}

impl<P> CctShard<P> {
    /// A root-only shard with a fresh name table and no payloads: the
    /// identity element of [`merge_shards`].
    pub fn empty() -> Self {
        CctShard {
            cct: Cct::new(NameTable::new()),
            journal: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Wrap an existing tree: the journal is derived from arena order.
    pub fn from_cct(cct: Cct, payload: Vec<P>) -> Self {
        let journal = arena_journal(&cct);
        CctShard {
            cct,
            journal,
            payload,
        }
    }
}

/// Merge `right` into `left`: replay `right`'s journal against
/// `left`'s tree, remap `right`'s payloads into the merged ids and
/// append them after `left`'s. `left`'s ids are stable, so its journal
/// and payloads carry over untouched — the invariant
/// [`crate::pool::reduce_pairwise`] needs for determinism.
pub fn merge_shards<P: RemapNodes>(mut left: CctShard<P>, right: CctShard<P>) -> CctShard<P> {
    let remap = replay_into(&mut left.cct, &mut left.journal, &right.cct, &right.journal);
    for mut p in right.payload {
        p.remap_nodes(&remap);
        left.payload.push(p);
    }
    left
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcId;

    fn tree(procs: &[&str]) -> Cct {
        let mut names = NameTable::new();
        let file = names.file("x.c");
        let module = names.module("x");
        let ids: Vec<ProcId> = procs.iter().map(|p| names.proc(p)).collect();
        let mut cct = Cct::new(names);
        let root = cct.root();
        let mut parent = root;
        for (i, p) in ids.into_iter().enumerate() {
            parent = cct.add_child(
                parent,
                ScopeKind::Frame {
                    proc: p,
                    module,
                    def: SourceLoc::new(file, 10 * (i as u32 + 1)),
                    call_site: None,
                },
            );
        }
        cct
    }

    #[derive(Debug, PartialEq)]
    struct Tagged(Vec<NodeId>);

    impl RemapNodes for Tagged {
        fn remap_nodes(&mut self, map: &[NodeId]) {
            for n in &mut self.0 {
                *n = map[n.index()];
            }
        }
    }

    #[test]
    fn arena_journal_rebuilds_the_tree() {
        let src = tree(&["main", "work", "leaf"]);
        let journal = arena_journal(&src);
        assert_eq!(journal.len(), src.len() - 1);
        let mut dst = Cct::new(NameTable::new());
        let mut dj = Vec::new();
        let remap = replay_into(&mut dst, &mut dj, &src, &journal);
        assert_eq!(dst.len(), src.len());
        for n in src.all_nodes() {
            // Fresh fold of a single tree: ids map onto themselves.
            assert_eq!(remap[n.index()], n);
        }
        assert_eq!(dj, journal);
    }

    #[test]
    fn merge_deduplicates_shared_prefixes_and_remaps_payloads() {
        let a = tree(&["main", "fast"]);
        let b = tree(&["main", "slow"]);
        let sa = CctShard::from_cct(a, vec![Tagged(vec![NodeId(2)])]);
        let b_leaf = NodeId(2);
        let sb = CctShard::from_cct(b, vec![Tagged(vec![b_leaf])]);
        let merged = merge_shards(merge_shards(CctShard::empty(), sa), sb);
        // main shared; fast and slow distinct: root + 3.
        assert_eq!(merged.cct.len(), 4);
        assert_eq!(merged.journal.len(), 3);
        // b's payload now points at the merged "slow" node, not id 2.
        assert_eq!(merged.payload.len(), 2);
        let slow = merged.payload[1].0[0];
        assert!(
            matches!(merged.cct.kind(slow), ScopeKind::Frame { proc, .. }
            if merged.cct.names.proc_name(proc) == "slow")
        );
    }

    #[test]
    fn fold_into_empty_ignores_source_name_table_order() {
        // Same tree, but one source interned extra names first: the
        // folds must still be identical because translation goes by
        // string, against a fresh table.
        let a = tree(&["main", "work"]);
        let mut b = tree(&["main", "work"]);
        b.names.proc("unrelated_zzz");
        b.names.file("zzz.c");
        let fold = |src: &Cct| {
            let mut dst = Cct::new(NameTable::new());
            let mut dj = Vec::new();
            replay_into(&mut dst, &mut dj, src, &arena_journal(src));
            dst
        };
        let fa = fold(&a);
        let fb = fold(&b);
        assert_eq!(fa.len(), fb.len());
        for n in fa.all_nodes() {
            assert_eq!(fa.kind(n), fb.kind(n));
        }
        assert_eq!(fa.names.proc_count(), fb.names.proc_count());
    }
}
