//! A minimal JSON value tree with no external dependencies, shared by
//! the serve protocol (requests/responses) and the analyze layer
//! (`BENCH_*.json` records, machine-readable verdicts and gate reports).
//!
//! The parser faces hostile input (protocol lines off a socket, bench
//! records off disk), so it is written to *reject*, never to panic:
//! recursion is depth-capped (a `[[[[…` bomb returns an error instead
//! of overflowing the stack), numbers must be finite, strings must be
//! valid escapes over valid UTF-8, and trailing garbage after the
//! top-level value is an error.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always finite; the parser rejects overflow).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys: last one wins on
    /// lookup, all are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (last occurrence wins), if this is an
    /// object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer: the number
    /// must be a non-negative whole value small enough that `f64`
    /// stored it losslessly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize into `out`. Stable member order (source/insertion
    /// order), no whitespace.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// [`Json::write`] into a fresh string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

/// Convenience: build an object from `(key, value)` pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Write a number: whole values that round-trip through `f64` print as
/// integers (session ids, node ids, counts), everything else as the
/// shortest `{:?}` float form.
fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting cap: a request deeper than this is rejected before the
/// parser's recursion can become a stack problem.
const MAX_DEPTH: u32 = 64;

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(text, bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(format!("expected object key at byte {pos}", pos = *pos));
                }
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(text, bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        Some(b't') if text[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if text[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if text[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(text, bytes, pos),
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = &text[start..*pos];
    match token.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => Err(format!("invalid number '{token}' at byte {start}")),
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = text
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        *pos += 4;
                        // Surrogates are rejected rather than paired: the
                        // protocol never needs astral escapes (raw UTF-8
                        // passes through unescaped).
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                        );
                    }
                    other => return Err(format!("invalid escape '\\{}'", other as char)),
                }
            }
            0x00..=0x1f => return Err("unescaped control byte in string".into()),
            _ => {
                // Consume one UTF-8 scalar from the source text.
                let rest = &text[*pos..];
                let c = rest.chars().next().ok_or("string spans invalid UTF-8")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let v = obj(vec![
            ("id", Json::Num(7.0)),
            ("method", Json::Str("open".into())),
            (
                "params",
                obj(vec![("path", Json::Str("/tmp/a \"b\"\n.db".into()))]),
            ),
            ("rows", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_print_without_a_fraction() {
        assert_eq!(Json::Num(42.0).to_json(), "42");
        assert_eq!(Json::Num(-3.0).to_json(), "-3");
        assert_eq!(Json::Num(0.5).to_json(), "0.5");
    }

    #[test]
    fn rejects_truncated_input() {
        for bad in [
            "", "{", "{\"a\"", "{\"a\":", "{\"a\":1", "[1,", "\"abc", "\"abc\\", "\"a\\u12", "tru",
            "-",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("NaN").is_err());
        assert!(parse("Infinity").is_err());
        assert!(parse("1e999").is_err(), "overflow to inf is rejected");
        assert!(parse("{'a':1}").is_err(), "single quotes are not JSON");
    }

    #[test]
    fn depth_bomb_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
        let deep_ok = format!("{}1{}", "[".repeat(60), "]".repeat(60));
        assert!(parse(&deep_ok).is_ok());
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(
            parse(r#""a\n\t\"\\A""#).unwrap(),
            Json::Str("a\n\t\"\\A".into())
        );
        assert!(parse(r#""\ud800""#).is_err(), "lone surrogate rejected");
        assert!(parse("\"a\u{1}b\"").is_err(), "raw control byte rejected");
    }

    #[test]
    fn object_lookup_takes_the_last_duplicate() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("b"), None);
    }

    #[test]
    fn as_u64_requires_an_exact_nonnegative_whole() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }
}
