//! Generic chunked fan-out over the persistent worker pool.
//!
//! Several pipeline stages share the same shape: split a slice of
//! per-rank items into contiguous chunks, hand each chunk to a worker,
//! then combine the partials **in chunk order** so results are
//! deterministic no matter how many threads ran. This module is that
//! shape, written once: the streaming summarizer, the parallel
//! correlator and the lazy-column decoder all build on it instead of
//! each carrying their own fan-out block.
//!
//! Chunks run on [`crate::pool`] — long-lived workers reused across
//! calls — so a fan-out costs a queue push per chunk, not a thread
//! spawn/join per chunk. A panicking chunk closure propagates a single
//! panic (the lowest chunk index's payload) to the caller after the
//! other chunks finish; it no longer aborts the process the way
//! `join().unwrap()` inside a scope did.

use crate::pool;
use std::sync::OnceLock;

/// Resolve a requested worker count. `0` means "pick for me": the
/// `CALLPATH_THREADS` environment variable when set to a positive
/// integer (so real multi-core hosts can push past the default cap and
/// CI containers can pin 1), otherwise available parallelism capped at
/// 8 so oversubscribed CI machines don't spawn a thread mob. Any
/// explicit nonzero request is used as given.
///
/// The environment is consulted **once per process** (every fan-out
/// site calls this, and `env::var` is a syscall plus a parse): set
/// `CALLPATH_THREADS` before the first fan-out, the way `scripts/ci.sh`
/// pins it at process start.
pub fn resolve_threads(threads: usize) -> usize {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    let env = *ENV_THREADS
        .get_or_init(|| parse_threads_env(std::env::var("CALLPATH_THREADS").ok().as_deref()));
    resolve_threads_from(threads, env)
}

/// The pure policy behind [`resolve_threads`], with the environment's
/// contribution injected — what the unit tests exercise, with no
/// process-global mutation.
fn resolve_threads_from(threads: usize, env_override: Option<usize>) -> usize {
    if threads != 0 {
        return threads;
    }
    if let Some(n) = env_override {
        return n;
    }
    std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4)
}

/// Parse a `CALLPATH_THREADS` value: a positive integer overrides the
/// automatic choice; unset, zero, or garbage means "no override".
fn parse_threads_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Split `items` into at most `threads` contiguous chunks, run `map`
/// on each chunk on the worker pool, and return the partial results
/// **in chunk order** (ascending item index), independent of worker
/// scheduling.
///
/// `map` receives `(chunk_index, chunk)`; chunk 0 starts at item 0.
/// With `threads == 0` the worker count is chosen automatically
/// ([`resolve_threads`]). An empty `items` yields an empty vec without
/// touching the pool, and a single-chunk call runs inline on the
/// caller.
pub fn chunked_map<T, A, F>(items: &[T], threads: usize, map: F) -> Vec<A>
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = resolve_threads(threads);
    let chunk = items.len().div_ceil(threads).max(1);
    if threads == 1 || items.len() <= chunk {
        return vec![map(0, items)];
    }
    let map = &map;
    pool::run_tasks(
        items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, batch)| move || map(ci, batch))
            .collect(),
    )
}

/// [`chunked_map`] followed by a left fold of the partials in chunk
/// order: `reduce(acc, partial)` sees partials for items `0..k` before
/// the partial for items `k..`. Returns `None` when `items` is empty.
pub fn chunked_reduce<T, A, F, R>(items: &[T], threads: usize, map: F, reduce: R) -> Option<A>
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
    R: FnMut(A, A) -> A,
{
    let mut partials = chunked_map(items, threads, map).into_iter();
    let first = partials.next()?;
    Some(partials.fold(first, reduce))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_every_item_exactly_once_in_order() {
        let items: Vec<u32> = (0..103).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parts = chunked_map(&items, threads, |_ci, c| c.to_vec());
            let flat: Vec<u32> = parts.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn reduce_is_deterministic_across_thread_counts() {
        let items: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let sum =
            |t| chunked_reduce(&items, t, |_ci, c| c.iter().sum::<f64>(), |a, b| a + b).unwrap();
        let expect = sum(1);
        for t in [2, 4, 7] {
            assert_eq!(sum(t), expect);
        }
    }

    #[test]
    fn chunk_indices_are_contiguous_from_zero() {
        let items: Vec<u8> = vec![0; 10];
        let parts = chunked_map(&items, 3, |ci, c| (ci, c.len()));
        let mut seen: Vec<usize> = parts.iter().map(|&(ci, _)| ci).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..parts.len()).collect::<Vec<_>>());
        assert_eq!(parts.iter().map(|&(_, n)| n).sum::<usize>(), 10);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let items: Vec<u32> = Vec::new();
        assert!(chunked_map(&items, 4, |_, c| c.len()).is_empty());
        assert_eq!(
            chunked_reduce(&items, 4, |_, c| c.len(), |a, b| a + b),
            None
        );
    }

    #[test]
    fn a_panicking_chunk_propagates_one_panic_with_its_message() {
        let items: Vec<u32> = (0..64).collect();
        let err = std::panic::catch_unwind(|| {
            chunked_map(&items, 8, |ci, _c| {
                if ci == 3 {
                    panic!("chunk {ci} exploded");
                }
                ci
            })
        })
        .expect_err("worker panic must reach the caller");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "chunk 3 exploded");
    }

    #[test]
    fn env_override_sets_the_automatic_thread_count() {
        // The policy is tested through its pure core with the
        // environment's contribution injected: no `env::set_var`, so
        // nothing here can race the parallel test harness (mutating
        // process-global state from a unit test poisoned concurrently
        // running pool/chunked tests before).
        assert_eq!(resolve_threads_from(0, Some(3)), 3);
        // Explicit requests still win over the environment.
        assert_eq!(resolve_threads_from(5, Some(3)), 5);
        // No override falls through to the automatic choice.
        let auto = resolve_threads_from(0, None);
        assert!((1..=8).contains(&auto));
    }

    #[test]
    fn env_parse_accepts_positive_integers_only() {
        assert_eq!(parse_threads_env(Some("3")), Some(3));
        assert_eq!(parse_threads_env(Some("  16 ")), Some(16));
        // Unset, zero and garbage all mean "no override".
        assert_eq!(parse_threads_env(None), None);
        assert_eq!(parse_threads_env(Some("0")), None);
        assert_eq!(parse_threads_env(Some("not a number")), None);
        assert_eq!(parse_threads_env(Some("-2")), None);
        assert_eq!(parse_threads_env(Some("")), None);
    }

    #[test]
    fn cached_resolution_is_consistent_across_calls() {
        // Whatever the process environment says, the cached answer must
        // be stable call-to-call and explicit requests must win.
        let first = resolve_threads(0);
        assert_eq!(resolve_threads(0), first);
        assert!(first >= 1);
        assert_eq!(resolve_threads(7), 7);
    }
}
