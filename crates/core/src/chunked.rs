//! Generic chunked fan-out over crossbeam scoped threads.
//!
//! Several pipeline stages share the same shape: split a slice of
//! per-rank items into contiguous chunks, hand each chunk to a scoped
//! worker thread that folds it into a partial accumulator, then combine
//! the partials **in chunk order** so results are deterministic no
//! matter how many threads ran. This module is that shape, written
//! once: the streaming summarizer and the parallel correlator both
//! build on it instead of each carrying their own scope/spawn/join
//! block.

/// Resolve a requested worker count: `0` means "pick for me" (available
/// parallelism, capped at 8 so oversubscribed CI machines don't spawn a
/// thread mob), anything else is used as given.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(4)
    } else {
        threads
    }
}

/// Split `items` into at most `threads` contiguous chunks, run `map`
/// on each chunk in its own scoped thread, and return the partial
/// results **in chunk order** (ascending item index), independent of
/// thread scheduling.
///
/// `map` receives `(chunk_index, chunk)`; chunk 0 starts at item 0.
/// With `threads == 0` the worker count is chosen automatically
/// ([`resolve_threads`]). An empty `items` yields an empty vec without
/// spawning.
pub fn chunked_map<T, A, F>(items: &[T], threads: usize, map: F) -> Vec<A>
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = resolve_threads(threads);
    let chunk = items.len().div_ceil(threads).max(1);
    if threads == 1 || items.len() <= chunk {
        return vec![map(0, items)];
    }
    crossbeam::thread::scope(|s| {
        let map = &map;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, batch)| s.spawn(move |_| map(ci, batch)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("chunked worker thread panicked")
}

/// [`chunked_map`] followed by a left fold of the partials in chunk
/// order: `reduce(acc, partial)` sees partials for items `0..k` before
/// the partial for items `k..`. Returns `None` when `items` is empty.
pub fn chunked_reduce<T, A, F, R>(items: &[T], threads: usize, map: F, reduce: R) -> Option<A>
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
    R: FnMut(A, A) -> A,
{
    let mut partials = chunked_map(items, threads, map).into_iter();
    let first = partials.next()?;
    Some(partials.fold(first, reduce))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_every_item_exactly_once_in_order() {
        let items: Vec<u32> = (0..103).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parts = chunked_map(&items, threads, |_ci, c| c.to_vec());
            let flat: Vec<u32> = parts.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn reduce_is_deterministic_across_thread_counts() {
        let items: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let sum =
            |t| chunked_reduce(&items, t, |_ci, c| c.iter().sum::<f64>(), |a, b| a + b).unwrap();
        let expect = sum(1);
        for t in [2, 4, 7] {
            assert_eq!(sum(t), expect);
        }
    }

    #[test]
    fn chunk_indices_are_contiguous_from_zero() {
        let items: Vec<u8> = vec![0; 10];
        let parts = chunked_map(&items, 3, |ci, c| (ci, c.len()));
        let mut seen: Vec<usize> = parts.iter().map(|&(ci, _)| ci).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..parts.len()).collect::<Vec<_>>());
        assert_eq!(parts.iter().map(|&(_, n)| n).sum::<usize>(), 10);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let items: Vec<u32> = Vec::new();
        assert!(chunked_map(&items, 4, |_, c| c.len()).is_empty());
        assert_eq!(
            chunked_reduce(&items, 4, |_, c| c.len(), |a, b| a + b),
            None
        );
    }
}
