//! Differencing call path profiles from a pair of executions
//! (Section VI-A: "we compute a derived metric that quantifies scaling
//! loss by scaling and differencing call path profiles from a pair of
//! executions", after Coarfa et al., the paper's reference \[3\]).
//!
//! Two experiments — different core counts, input sizes, or code versions
//! — are structurally aligned by *name* (procedures, files and modules
//! are matched by their strings, not their interned ids, since each
//! experiment has its own name table) and merged into one experiment
//! whose metric list is the concatenation of both sides' metrics, each
//! suffixed with its execution's label. Derived columns over the merged
//! table then express scaling loss, speedup, or any other cross-run
//! comparison, and every presentation feature (three views, hot paths,
//! sorting) works on the result unchanged.

use crate::cct::Cct;
use crate::experiment::Experiment;
use crate::ids::{ColumnId, MetricId, NodeId};
use crate::metrics::{MetricDesc, RawMetrics, StorageKind};
use crate::names::NameTable;
use crate::supergraph::{arena_journal, replay_into};

/// Copy one experiment's CCT and direct costs into the merged experiment
/// under construction. `metric_base` is the index of this side's first
/// metric in the merged metric list.
///
/// The structural half is the shared union-supergraph primitive: the
/// source tree's arena order is its pruned creation journal
/// ([`arena_journal`]), and [`replay_into`] replays it against the
/// merged tree with by-name kind translation — the N=2 case of the
/// ensemble merge, producing the same node ids as the pre-supergraph
/// hand-rolled walk (pinned by `tests/data/diff_s3d.golden`).
fn fold_in(exp: &Experiment, cct: &mut Cct, raw: &mut RawMetrics, metric_base: usize) {
    let mut journal = Vec::new();
    let node_map: Vec<NodeId> = replay_into(cct, &mut journal, &exp.cct, &arena_journal(&exp.cct));
    for mi in 0..exp.raw.metric_count() {
        let m = MetricId::from_usize(mi);
        let merged_m = MetricId::from_usize(metric_base + mi);
        for (src_node, v) in exp.raw.column(m).nonzero_sorted() {
            raw.add_cost(merged_m, node_map[src_node as usize], v);
        }
    }
}

/// Merge two experiments into one, aligning their CCTs structurally by
/// name. The merged experiment carries `a`'s metrics first (each name
/// suffixed `@{label_a}`), then `b`'s (suffixed `@{label_b}`); scopes
/// present in only one run simply have blank cells on the other side.
pub fn merge_experiments(
    a: &Experiment,
    label_a: &str,
    b: &Experiment,
    label_b: &str,
    storage: StorageKind,
) -> Experiment {
    let mut cct = Cct::new(NameTable::new());
    let mut raw = RawMetrics::new(storage);
    for (exp, label) in [(a, label_a), (b, label_b)] {
        for d in exp.raw.descs() {
            raw.add_metric(MetricDesc::new(
                &format!("{}@{}", d.name, label),
                &d.unit,
                d.period,
            ));
        }
        let _ = label;
    }
    fold_in(a, &mut cct, &mut raw, 0);
    fold_in(b, &mut cct, &mut raw, a.raw.metric_count());
    Experiment::build(cct, raw, storage)
}

/// Result of a scaling-loss analysis.
pub struct ScalingAnalysis {
    /// The merged experiment with loss columns appended.
    pub experiment: Experiment,
    /// Inclusive metric columns of the base and peer runs.
    pub base_incl: ColumnId,
    /// Inclusive column of the peer run's chosen metric.
    pub peer_incl: ColumnId,
    /// `peer - expected_scale × base`, inclusive: positive values are
    /// scaling loss in context.
    pub loss_incl: ColumnId,
    /// Same over exclusive costs (pinpoints the scopes themselves).
    pub loss_excl: ColumnId,
    /// `loss / peer_total`: the fraction of the peer execution wasted,
    /// the paper's "% scalability loss" presentation.
    pub loss_frac: ColumnId,
}

/// Scale-and-difference two runs (Section VI-A). `metric` names the raw
/// metric to compare (e.g. `PAPI_TOT_CYC`); `expected_scale` is the
/// factor by which the base run's costs *should* grow in the peer run
/// (1.0 for weak scaling of per-rank profiles; `p/q` for strong scaling
/// from q to p cores; 1.0 for before/after code-change comparisons).
pub fn scaling_loss(
    base: &Experiment,
    label_base: &str,
    peer: &Experiment,
    label_peer: &str,
    metric: &str,
    expected_scale: f64,
) -> Result<ScalingAnalysis, String> {
    let bm = base
        .raw
        .find(metric)
        .ok_or_else(|| format!("metric {metric} not in base run"))?;
    let pm = peer
        .raw
        .find(metric)
        .ok_or_else(|| format!("metric {metric} not in peer run"))?;
    let storage = base.raw.storage();
    let mut merged = merge_experiments(base, label_base, peer, label_peer, storage);
    // Metric ids in the merged table: base block then peer block.
    let merged_bm = MetricId(bm.0);
    let merged_pm = MetricId(base.raw.metric_count() as u32 + pm.0);
    let base_incl = merged.inclusive_col(merged_bm);
    let base_excl = merged.exclusive_col(merged_bm);
    let peer_incl = merged.inclusive_col(merged_pm);
    let peer_excl = merged.exclusive_col(merged_pm);

    let loss_incl = merged
        .add_derived(
            &format!("scaling loss (I) {label_peer} vs {label_base}"),
            &format!("${} - {} * ${}", peer_incl.0, expected_scale, base_incl.0),
        )
        .map_err(|e| e.to_string())?;
    let loss_excl = merged
        .add_derived(
            &format!("scaling loss (E) {label_peer} vs {label_base}"),
            &format!("${} - {} * ${}", peer_excl.0, expected_scale, base_excl.0),
        )
        .map_err(|e| e.to_string())?;
    let loss_frac = merged
        .add_derived(
            "% scaling loss",
            &format!(
                "(${} - {} * ${}) / @{}",
                peer_incl.0, expected_scale, base_incl.0, peer_incl.0
            ),
        )
        .map_err(|e| e.to_string())?;
    Ok(ScalingAnalysis {
        experiment: merged,
        base_incl,
        peer_incl,
        loss_incl,
        loss_excl,
        loss_frac,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::SourceLoc;
    use crate::scope::ScopeKind;

    /// Build a small experiment: main -> {fast, slow}, with the slow
    /// frame's statement cost parameterized.
    fn sample(slow_cost: f64) -> Experiment {
        let mut names = NameTable::new();
        let file = names.file("x.c");
        let module = names.module("x");
        let p_main = names.proc("main");
        let p_fast = names.proc("fast");
        let p_slow = names.proc("slow");
        let mut cct = Cct::new(names);
        let root = cct.root();
        let fr = |proc, line: u32, cs: Option<u32>| ScopeKind::Frame {
            proc,
            module,
            def: SourceLoc::new(file, line),
            call_site: cs.map(|l| SourceLoc::new(file, l)),
        };
        let main = cct.add_child(root, fr(p_main, 1, None));
        let fast = cct.add_child(main, fr(p_fast, 10, Some(2)));
        let slow = cct.add_child(main, fr(p_slow, 20, Some(3)));
        let sf = cct.add_child(
            fast,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 11),
            },
        );
        let ss = cct.add_child(
            slow,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 21),
            },
        );
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        raw.add_cost(cyc, sf, 100.0);
        raw.add_cost(cyc, ss, slow_cost);
        Experiment::build(cct, raw, StorageKind::Dense)
    }

    #[test]
    fn merged_cct_aligns_by_name() {
        let a = sample(100.0);
        let b = sample(300.0);
        let merged = merge_experiments(&a, "A", &b, "B", StorageKind::Dense);
        // Same shape: node counts equal (all scopes align).
        assert_eq!(merged.cct.len(), a.cct.len());
        assert_eq!(merged.raw.metric_count(), 2);
        assert_eq!(merged.raw.descs()[0].name, "cycles@A");
        assert_eq!(merged.raw.descs()[1].name, "cycles@B");
        // Totals preserved per side.
        assert_eq!(merged.raw.total(MetricId(0)), 200.0);
        assert_eq!(merged.raw.total(MetricId(1)), 400.0);
    }

    #[test]
    fn scopes_unique_to_one_run_get_blank_cells() {
        let a = sample(100.0);
        // b has an extra callee under main.
        let mut b = sample(100.0);
        let extra_names = {
            let p = b.cct.names.proc("extra");
            let f = b.cct.names.file("x.c");
            let m = b.cct.names.module("x");
            (p, f, m)
        };
        let main = b.cct.children(b.cct.root()).next().unwrap();
        let extra = b.cct.add_child(
            main,
            ScopeKind::Frame {
                proc: extra_names.0,
                module: extra_names.2,
                def: SourceLoc::new(extra_names.1, 30),
                call_site: Some(SourceLoc::new(extra_names.1, 4)),
            },
        );
        let stmt = b.cct.add_child(
            extra,
            ScopeKind::Stmt {
                loc: SourceLoc::new(extra_names.1, 31),
            },
        );
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        // Rebuild b with the extra cost (Experiment is immutable once
        // built, so construct anew).
        for n in b.cct.all_nodes() {
            let v = b.raw.direct(MetricId(0), n);
            if v != 0.0 {
                raw.add_cost(cyc, n, v);
            }
        }
        raw.add_cost(cyc, stmt, 50.0);
        let b = Experiment::build(b.cct.clone(), raw, StorageKind::Dense);

        let merged = merge_experiments(&a, "A", &b, "B", StorageKind::Dense);
        assert_eq!(merged.cct.len(), a.cct.len() + 2, "extra frame + stmt");
        // Find the extra frame: base metric must be zero there.
        let extra_node = merged
            .cct
            .all_nodes()
            .find(|&n| {
                matches!(merged.cct.kind(n), ScopeKind::Frame { proc, .. }
                    if merged.cct.names.proc_name(proc) == "extra")
            })
            .unwrap();
        assert_eq!(
            merged
                .columns
                .get(merged.inclusive_col(MetricId(0)), extra_node.0),
            0.0
        );
        assert_eq!(
            merged
                .columns
                .get(merged.inclusive_col(MetricId(1)), extra_node.0),
            50.0
        );
    }

    #[test]
    fn identical_runs_have_zero_loss_everywhere() {
        let a = sample(250.0);
        let b = sample(250.0);
        let analysis = scaling_loss(&a, "A", &b, "B", "cycles", 1.0).unwrap();
        let exp = &analysis.experiment;
        for n in exp.cct.all_nodes() {
            assert_eq!(exp.columns.get(analysis.loss_incl, n.0), 0.0, "{n:?}");
            assert_eq!(exp.columns.get(analysis.loss_excl, n.0), 0.0, "{n:?}");
        }
    }

    #[test]
    fn loss_pinpoints_the_degraded_scope() {
        let a = sample(100.0);
        let b = sample(400.0); // slow got 4x slower; fast unchanged
        let analysis = scaling_loss(&a, "A", &b, "B", "cycles", 1.0).unwrap();
        let exp = &analysis.experiment;
        // Rank scopes by inclusive loss: slow (and its statement / main
        // above it) carry 300; fast carries 0.
        let slow = exp
            .cct
            .all_nodes()
            .find(|&n| {
                matches!(exp.cct.kind(n), ScopeKind::Frame { proc, .. }
                    if exp.cct.names.proc_name(proc) == "slow")
            })
            .unwrap();
        let fast = exp
            .cct
            .all_nodes()
            .find(|&n| {
                matches!(exp.cct.kind(n), ScopeKind::Frame { proc, .. }
                    if exp.cct.names.proc_name(proc) == "fast")
            })
            .unwrap();
        assert_eq!(exp.columns.get(analysis.loss_incl, slow.0), 300.0);
        assert_eq!(exp.columns.get(analysis.loss_incl, fast.0), 0.0);
        // Hot path on the loss column lands in slow's subtree.
        let mut view = crate::view::View::calling_context(exp);
        let roots = view.roots();
        let path = view.hot_path(
            roots[0],
            analysis.loss_incl,
            crate::hotpath::HotPathConfig::default(),
        );
        let labels: Vec<String> = path.iter().map(|&n| view.label(n)).collect();
        assert!(labels.contains(&"slow".to_owned()), "{labels:?}");
    }

    #[test]
    fn expected_scale_models_strong_scaling() {
        // Peer ran on 2x the cores: costs should halve. fast halved
        // (perfect); slow stayed flat (no speedup => loss).
        let base = sample(200.0); // fast 100, slow 200
        let names = NameTable::new();
        let _ = names; // peer built via sample-like shape below
        let peer = {
            let mut e = sample(200.0);
            // Rebuild with fast=50, slow=200.
            let mut raw = RawMetrics::new(StorageKind::Dense);
            let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
            for n in e.cct.all_nodes() {
                let v = e.raw.direct(MetricId(0), n);
                if v == 100.0 {
                    raw.add_cost(cyc, n, 50.0);
                } else if v != 0.0 {
                    raw.add_cost(cyc, n, v);
                }
            }
            e = Experiment::build(e.cct.clone(), raw, StorageKind::Dense);
            e
        };
        let analysis = scaling_loss(&base, "1p", &peer, "2p", "cycles", 0.5).unwrap();
        let exp = &analysis.experiment;
        let slow = exp
            .cct
            .all_nodes()
            .find(|&n| {
                matches!(exp.cct.kind(n), ScopeKind::Frame { proc, .. }
                    if exp.cct.names.proc_name(proc) == "slow")
            })
            .unwrap();
        let fast = exp
            .cct
            .all_nodes()
            .find(|&n| {
                matches!(exp.cct.kind(n), ScopeKind::Frame { proc, .. }
                    if exp.cct.names.proc_name(proc) == "fast")
            })
            .unwrap();
        assert_eq!(
            exp.columns.get(analysis.loss_incl, fast.0),
            0.0,
            "perfect scaling: no loss"
        );
        assert_eq!(
            exp.columns.get(analysis.loss_incl, slow.0),
            100.0,
            "200 observed - 0.5*200 expected"
        );
    }

    #[test]
    fn missing_metric_is_an_error() {
        let a = sample(1.0);
        let b = sample(1.0);
        assert!(scaling_loss(&a, "A", &b, "B", "nope", 1.0).is_err());
    }
}
