//! Hostile-input robustness for the `analyze` RPC: whatever query text
//! a client sends — malformed predicates, pathological regexes, deeply
//! nested parentheses, oversized strings, control characters — the
//! engine answers with a structured reply and never panics. The
//! companion property tests drive the analysis-layer parsers
//! (`Query::parse`, `parse_policy`) directly with arbitrary and
//! truncated input, since the gate policy never crosses the wire.

use callpath_analyze::{gate::parse_policy, query::MAX_QUERY, run_query, Query};
use callpath_profiler::ExecConfig;
use callpath_serve::json::{self, Json};
use callpath_serve::{Engine, ServeConfig};
use callpath_workloads::{pipeline, s3d};
use proptest::prelude::*;

fn s3d_db() -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "callpath-analyze-fuzz-{}-s3d.cpdb",
        std::process::id()
    ));
    if !p.exists() {
        let exp = pipeline::build_experiment(
            &s3d::program(s3d::S3dConfig::default()),
            &ExecConfig::default(),
        );
        std::fs::write(&p, callpath_expdb::to_binary_v21(&exp)).unwrap();
    }
    p
}

/// A small on-disk ensemble, to prove `analyze` works over `.cpens`.
fn ens_db() -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "callpath-analyze-fuzz-{}-runs.cpens",
        std::process::id()
    ));
    if !p.exists() {
        let cfg = callpath_workloads::synth::EnsembleConfig {
            n_runs: 6,
            base_nodes: 200,
            tail_nodes: 8,
            nnz_per_metric: 64,
            outlier_every: 5,
            ..Default::default()
        };
        let runs: Vec<_> = (0..cfg.n_runs)
            .map(|r| {
                callpath_ensemble::RunData::from_model(
                    format!("run-{r}"),
                    &callpath_workloads::synth::ensemble_run(&cfg, r),
                )
                .unwrap()
            })
            .collect();
        std::fs::write(&p, callpath_ensemble::build(&runs, 2).to_bytes()).unwrap();
    }
    p
}

/// Every reply must parse as JSON and carry `ok`.
fn reply(engine: &Engine, line: &str) -> Json {
    let text = engine.handle_line(line);
    let v = json::parse(&text).unwrap_or_else(|e| panic!("unparseable reply {text:?}: {e}"));
    assert!(
        v.get("ok").and_then(Json::as_bool).is_some(),
        "reply without ok: {text}"
    );
    v
}

fn analyze_line(path: &std::path::Path, query: &str) -> String {
    let params = json::obj(vec![
        ("path", Json::Str(path.display().to_string())),
        ("query", Json::Str(query.to_owned())),
    ]);
    format!(
        r#"{{"id":1,"method":"analyze","params":{}}}"#,
        params.to_json()
    )
}

fn error_code(v: &Json) -> Option<&str> {
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

#[test]
fn analyze_over_rpc_matches_a_direct_run_query() {
    let db = s3d_db();
    let engine = Engine::new(ServeConfig::default());
    let query = r#"proc ~ "solve|flux" and incl("PAPI_TOT_CYC") > 1%"#;
    let v = reply(&engine, &analyze_line(&db, query));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let result = v.get("result").unwrap();

    let exp = callpath_expdb::open_lazy(std::fs::read(&db).unwrap()).unwrap();
    let direct = run_query(&exp, query, None, 20, 1).unwrap();
    assert_eq!(
        result.get("matched").and_then(Json::as_u64),
        Some(direct.matched as u64)
    );
    assert_eq!(
        result.get("hits").and_then(Json::as_arr).map(|a| a.len()),
        Some(direct.hits.len())
    );
    // The whole report round-trips: the RPC result is exactly the
    // report's own JSON form.
    assert_eq!(result.to_json(), direct.to_json().to_json());
}

#[test]
fn analyze_works_over_a_cpens_ensemble() {
    let db = ens_db();
    let engine = Engine::new(ServeConfig::default());
    // Stat columns of the ensemble are ordinary named columns.
    let query = r#"col("PAPI_ENS_00 mean (I)") > 0"#;
    let v = reply(&engine, &analyze_line(&db, query));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    let matched = v
        .get("result")
        .and_then(|r| r.get("matched"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(matched > 0, "ensemble stat query must match something");
}

#[test]
fn hostile_queries_get_structured_command_errors() {
    let db = s3d_db();
    let engine = Engine::new(ServeConfig::default());
    let hostile = [
        "",
        "   ",
        "proc ~",
        r#"proc ~ "unclosed"#,
        r#"proc ~ "(""#,
        r#"proc ~ "a**""#,
        r#"proc ~ "[z-a]""#,
        "incl(\"PAPI_TOT_CYC\") >",
        "incl(\"no such metric\") > 5",
        "not not not",
        "and and and",
        "subtree(",
        "label ~ \"\\x00\\x01\"",
        "incl(\"PAPI_TOT_CYC\") > nan",
        "incl(\"PAPI_TOT_CYC\") > 1e309",
        "proc = \"equals is not an operator\"",
        "🦀 ~ \"ferris\"",
    ];
    for q in hostile {
        let v = reply(&engine, &analyze_line(&db, q));
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(false),
            "hostile query {q:?} was accepted"
        );
        assert_eq!(error_code(&v), Some("command"), "{q:?}");
    }
    // A deeply nested predicate trips the parser's depth cap, not the
    // stack.
    let deep = format!("{}label ~ \"x\"{}", "(".repeat(200), ")".repeat(200));
    let v = reply(&engine, &analyze_line(&db, &deep));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&v), Some("command"));
}

#[test]
fn oversized_predicates_are_rejected_at_the_protocol_layer() {
    let db = s3d_db();
    let engine = Engine::new(ServeConfig::default());
    let huge = format!("label ~ \"{}\"", "a".repeat(MAX_QUERY));
    let v = reply(&engine, &analyze_line(&db, &huge));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    // Rejected before the query parser ever sees it.
    assert_eq!(error_code(&v), Some("invalid"));
    let msg = v
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    assert!(msg.contains("oversized predicate"), "{msg}");
}

#[test]
fn analyze_on_a_missing_file_is_an_open_error() {
    let engine = Engine::new(ServeConfig::default());
    let v = reply(
        &engine,
        &analyze_line(std::path::Path::new("/nonexistent/x.cpdb"), "label ~ \"x\""),
    );
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&v), Some("open"));
}

#[test]
fn analyze_bounds_top_and_requires_its_fields() {
    let db = s3d_db();
    let engine = Engine::new(ServeConfig::default());
    for (params, expect) in [
        (r#"{"query":"label ~ \"x\""}"#.to_owned(), "invalid"),
        (format!(r#"{{"path":"{}"}}"#, db.display()), "invalid"),
        (
            format!(
                r#"{{"path":"{}","query":"label ~ \"x\"","top":1001}}"#,
                db.display()
            ),
            "invalid",
        ),
        (
            format!(
                r#"{{"path":"{}","query":"label ~ \"x\"","score":7}}"#,
                db.display()
            ),
            "invalid",
        ),
    ] {
        let line = format!(r#"{{"method":"analyze","params":{params}}}"#);
        let v = reply(&engine, &line);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        assert_eq!(error_code(&v), Some(expect), "{line}");
    }
}

const POLICY: &str = r#"
[defaults]
tolerance_pct = 10.0
fields = "_(ms|ns)$"

[[rule]]
bench = "nav"
field = "open_ms"
tolerance_pct = 25.0
hard = true
"#;

proptest! {
    /// Arbitrary bytes as query text: the reply is always structured
    /// (the engine catches panics, but the assertion here is stronger —
    /// parse errors surface as `command`, never as `internal`).
    #[test]
    fn arbitrary_query_text_never_panics_the_engine(q in "\\PC{0,120}") {
        let db = s3d_db();
        let engine = Engine::new(ServeConfig::default());
        let v = reply(&engine, &analyze_line(&db, &q));
        if v.get("ok").and_then(Json::as_bool) == Some(false) {
            prop_assert!(error_code(&v) != Some("internal"), "query {:?}", q);
        }
    }

    /// `Query::parse` totals: arbitrary input is either accepted or
    /// rejected with a positioned error — no panic, no hang.
    #[test]
    fn query_parse_is_total(q in "\\PC{0,200}") {
        let _ = Query::parse(&q);
    }

    /// Truncating a valid policy at any byte boundary never panics the
    /// policy parser.
    #[test]
    fn truncated_policies_never_panic(cut in 0usize..235) {
        let cut = cut.min(POLICY.len());
        if POLICY.is_char_boundary(cut) {
            let _ = parse_policy(&POLICY[..cut]);
        }
    }

    /// Arbitrary text as a policy file parses or errors, never panics.
    #[test]
    fn arbitrary_policy_text_is_total(p in "\\PC{0,200}") {
        let _ = parse_policy(&p);
    }
}
