//! Malformed-protocol robustness: whatever bytes a client sends, the
//! engine answers with a structured reply and never panics — truncated
//! JSON, unknown methods, out-of-range node ids, wrong parameter types,
//! and requests against sessions the LRU has already evicted.
//!
//! Engine-level behavior (eviction, byte-identical renders versus a
//! direct `Session`, shutdown RPC gating) is covered here too: these
//! tests drive `Engine::handle_line` without sockets, which is exactly
//! what makes the fuzz cheap enough to run thousands of cases.

use callpath_core::prelude::SourceStore;
use callpath_expdb::{open_lazy, to_binary_v21};
use callpath_profiler::ExecConfig;
use callpath_serve::json::{self, Json};
use callpath_serve::{Engine, ServeConfig};
use callpath_viewer::{Command, Session};
use callpath_workloads::{pipeline, s3d};
use proptest::prelude::*;

fn s3d_db() -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "callpath-serve-fuzz-{}-s3d.cpdb",
        std::process::id()
    ));
    if !p.exists() {
        let exp = pipeline::build_experiment(
            &s3d::program(s3d::S3dConfig::default()),
            &ExecConfig::default(),
        );
        std::fs::write(&p, to_binary_v21(&exp)).unwrap();
    }
    p
}

fn engine() -> Engine {
    Engine::new(ServeConfig::default())
}

/// A small on-disk ensemble: 6 synthetic runs, run 4 inflated.
fn ens_db() -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "callpath-serve-fuzz-{}-runs.cpens",
        std::process::id()
    ));
    if !p.exists() {
        let cfg = callpath_workloads::synth::EnsembleConfig {
            n_runs: 6,
            base_nodes: 200,
            tail_nodes: 8,
            nnz_per_metric: 64,
            outlier_every: 5,
            ..Default::default()
        };
        let runs: Vec<_> = (0..cfg.n_runs)
            .map(|r| {
                callpath_ensemble::RunData::from_model(
                    format!("run-{r}"),
                    &callpath_workloads::synth::ensemble_run(&cfg, r),
                )
                .unwrap()
            })
            .collect();
        std::fs::write(&p, callpath_ensemble::build(&runs, 2).to_bytes()).unwrap();
    }
    p
}

/// Every reply must parse as JSON and carry `ok`.
fn reply(engine: &Engine, line: &str) -> Json {
    let text = engine.handle_line(line);
    let v = json::parse(&text).unwrap_or_else(|e| panic!("unparseable reply {text:?}: {e}"));
    assert!(
        v.get("ok").and_then(Json::as_bool).is_some(),
        "reply without ok: {text}"
    );
    v
}

fn open_session(engine: &Engine, path: &std::path::Path) -> u64 {
    let line = format!(
        r#"{{"id":1,"method":"open","params":{{"path":"{}"}}}}"#,
        path.display()
    );
    let v = reply(engine, &line);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    v.get("result")
        .and_then(|r| r.get("session"))
        .and_then(Json::as_u64)
        .expect("open returns a session id")
}

fn error_code(v: &Json) -> Option<&str> {
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

#[test]
fn engine_render_is_byte_identical_to_a_direct_session() {
    let db = s3d_db();
    let engine = engine();
    let id = open_session(&engine, &db);

    // A navigation script touching find, sort, hot-path, view
    // switching and flatten — mirrored against a direct Session.
    let script: &[(&str, Command)] = &[
        (
            r#"{"method":"find","params":{"session":SID,"needle":"transport"}}"#,
            Command::Find("transport".into()),
        ),
        (
            r#"{"method":"sort","params":{"session":SID,"column":1}}"#,
            Command::SortBy(callpath_core::prelude::ColumnId(1)),
        ),
        (
            r#"{"method":"hot-path","params":{"session":SID}}"#,
            Command::HotPath,
        ),
        (
            r#"{"method":"view","params":{"session":SID,"view":"flat"}}"#,
            Command::SwitchView(callpath_core::prelude::ViewKind::Flat),
        ),
        (
            r#"{"method":"flatten","params":{"session":SID}}"#,
            Command::Flatten,
        ),
        (
            r#"{"method":"view","params":{"session":SID,"view":"callers"}}"#,
            Command::SwitchView(callpath_core::prelude::ViewKind::Callers),
        ),
    ];

    let bytes = std::fs::read(&db).unwrap();
    let exp = open_lazy(bytes).unwrap();
    let mut direct = Session::new(&exp, SourceStore::new());

    for (template, cmd) in script {
        let line = template.replace("SID", &id.to_string());
        let v = reply(&engine, &line);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line}");
        direct.apply(cmd.clone()).unwrap();
        let (want, want_rows) = direct.render_numbered();
        let got = v
            .get("result")
            .and_then(|r| r.get("render"))
            .and_then(Json::as_str)
            .unwrap();
        assert_eq!(got, want, "server render diverged after {line}");
        let got_rows: Vec<u64> = v
            .get("result")
            .and_then(|r| r.get("rows"))
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|n| n.as_u64().unwrap())
            .collect();
        let want_rows: Vec<u64> = want_rows.iter().map(|&n| n as u64).collect();
        assert_eq!(got_rows, want_rows);
    }

    // Expand is data-driven: pick the first visible row the direct
    // session can expand, mirror it over the wire, compare bytes.
    let (_, rows) = direct.render_numbered();
    let node = rows
        .iter()
        .copied()
        .find(|&n| direct.apply(Command::Expand(n)).is_ok())
        .expect("some visible row is expandable");
    let line = format!(r#"{{"method":"expand","params":{{"session":{id},"node":{node}}}}}"#);
    let v = reply(&engine, &line);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    let (want, _) = direct.render_numbered();
    let got = v
        .get("result")
        .and_then(|r| r.get("render"))
        .and_then(Json::as_str)
        .unwrap();
    assert_eq!(got, want, "server render diverged after {line}");
}

#[test]
fn lru_eviction_reclaims_the_oldest_session_and_errors_are_structured() {
    let db = s3d_db();
    let engine = Engine::new(ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    });
    let first = open_session(&engine, &db);
    let second = open_session(&engine, &db);
    // Touch `first` so `second` becomes the LRU victim.
    let line = format!(r#"{{"method":"render","params":{{"session":{first}}}}}"#);
    assert_eq!(
        reply(&engine, &line).get("ok").and_then(Json::as_bool),
        Some(true)
    );
    let third = open_session(&engine, &db);
    assert_ne!(third, second);

    // The evicted session answers with a structured unknown-session
    // error; the survivor still works.
    let line = format!(r#"{{"method":"render","params":{{"session":{second}}}}}"#);
    let v = reply(&engine, &line);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&v), Some("unknown-session"));
    for live in [first, third] {
        let line = format!(r#"{{"method":"render","params":{{"session":{live}}}}}"#);
        let v = reply(&engine, &line);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }

    // stats reflects the eviction.
    let v = reply(&engine, r#"{"method":"stats"}"#);
    let result = v.get("result").unwrap();
    assert_eq!(result.get("sessions").and_then(Json::as_u64), Some(2));
    assert_eq!(result.get("evictions").and_then(Json::as_u64), Some(1));
    assert_eq!(
        result.get("sessions_opened").and_then(Json::as_u64),
        Some(3)
    );
}

#[test]
fn shutdown_rpc_is_honored_only_when_allowed() {
    let engine = Engine::new(ServeConfig {
        allow_shutdown_rpc: false,
        ..ServeConfig::default()
    });
    let v = reply(&engine, r#"{"method":"shutdown"}"#);
    assert_eq!(error_code(&v), Some("forbidden"));
    assert!(!engine.is_shutting_down());

    let engine = engine_default_with_shutdown();
    assert!(engine.is_shutting_down());
}

fn engine_default_with_shutdown() -> Engine {
    let engine = engine();
    let v = reply(&engine, r#"{"method":"shutdown"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    engine
}

#[test]
fn ensemble_stats_answers_from_the_directory_and_rejects_malice() {
    let db = ens_db();
    let engine = engine();
    let path = db.display().to_string();

    // Happy path: run count, metric names, ranked outliers.
    let line = format!(r#"{{"method":"ensemble-stats","params":{{"path":"{path}"}}}}"#);
    let v = reply(&engine, &line);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    let result = v.get("result").unwrap();
    assert_eq!(result.get("runs").and_then(Json::as_u64), Some(6));
    let metrics = result.get("metrics").and_then(Json::as_arr).unwrap();
    assert_eq!(metrics.len(), 2);
    let outliers = result.get("outliers").and_then(Json::as_arr).unwrap();
    assert_eq!(outliers.len(), 6, "default top covers all 6 runs");
    let scores: Vec<f64> = outliers
        .iter()
        .map(|o| o.get("score").and_then(Json::as_f64).unwrap())
        .collect();
    assert!(
        scores.windows(2).all(|w| w[0] >= w[1]),
        "sorted: {scores:?}"
    );
    // Run 4 has metric 0 inflated 8x; it must rank first.
    let top_run = outliers[0].get("run").and_then(Json::as_u64).unwrap();
    assert_eq!(top_run, 4, "the inflated run ranks first");

    // `top` bounds the reply; a second request hits the cache.
    let line = format!(r#"{{"method":"ensemble-stats","params":{{"path":"{path}","top":2}}}}"#);
    let v = reply(&engine, &line);
    let outliers = v
        .get("result")
        .and_then(|r| r.get("outliers"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(outliers.len(), 2);

    // Hostile parameters come back as structured errors.
    let plain = s3d_db();
    let cases: Vec<(String, &str)> = vec![
        (r#"{"method":"ensemble-stats"}"#.into(), "invalid"),
        (
            r#"{"method":"ensemble-stats","params":{"path":7}}"#.into(),
            "invalid",
        ),
        (
            format!(r#"{{"method":"ensemble-stats","params":{{"path":"{path}","top":1001}}}}"#),
            "invalid",
        ),
        (
            format!(r#"{{"method":"ensemble-stats","params":{{"path":"{path}","top":-1}}}}"#),
            "invalid",
        ),
        (
            format!(r#"{{"method":"ensemble-stats","params":{{"path":"{path}","top":1.5}}}}"#),
            "invalid",
        ),
        (
            r#"{"method":"ensemble-stats","params":{"path":"/nonexistent/x.cpens"}}"#.into(),
            "open",
        ),
        // A plain v2.1 database has no ensemble directory.
        (
            format!(
                r#"{{"method":"ensemble-stats","params":{{"path":"{}"}}}}"#,
                plain.display()
            ),
            "open",
        ),
    ];
    for (line, want) in cases {
        let v = reply(&engine, &line);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        assert_eq!(error_code(&v), Some(want), "{line}");
    }
}

#[test]
fn handcrafted_malice_gets_structured_replies() {
    let db = s3d_db();
    let engine = engine();
    let id = open_session(&engine, &db);
    let cases: Vec<(String, &str)> = vec![
        (r#"{"id":1,"met"#.into(), "parse"),
        ("not json at all".into(), "parse"),
        ("\u{fffd}".into(), "parse"),
        (
            format!(r#"{{"method":"expand","params":{{"session":{id}}}}}"#),
            "invalid",
        ),
        (
            format!(r#"{{"method":"expand","params":{{"session":{id},"node":999999}}}}"#),
            "command",
        ),
        (
            format!(r#"{{"method":"sort","params":{{"session":{id},"column":4096}}}}"#),
            "command",
        ),
        (
            format!(r#"{{"method":"hot-path","params":{{"session":{id},"threshold":7.5}}}}"#),
            "command",
        ),
        // u64::MAX is not exactly representable in a JSON number, so it
        // is rejected at the type boundary rather than looked up.
        (
            r#"{"method":"render","params":{"session":18446744073709551615}}"#.into(),
            "invalid",
        ),
        (
            r#"{"method":"render","params":{"session":987654321}}"#.into(),
            "unknown-session",
        ),
        (
            r#"{"method":"open","params":{"path":"/nonexistent/nope.cpdb"}}"#.into(),
            "open",
        ),
        (r#"{"method":"frobnicate"}"#.into(), "unknown-method"),
        (
            format!("{}{}", r#"{"method":"ping","depth":"#, "[".repeat(200)),
            "parse",
        ),
    ];
    for (line, want) in cases {
        let v = reply(&engine, &line);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        assert_eq!(error_code(&v), Some(want), "{line}");
    }
    // The session is still healthy afterwards.
    let line = format!(r#"{{"method":"render","params":{{"session":{id}}}}}"#);
    assert_eq!(
        reply(&engine, &line).get("ok").and_then(Json::as_bool),
        Some(true)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary junk never panics and always yields a structured reply.
    #[test]
    fn arbitrary_lines_get_structured_replies(line in "[ -~]{0,200}") {
        let engine = engine();
        let text = engine.handle_line(&line);
        let v = json::parse(&text).unwrap();
        prop_assert!(v.get("ok").and_then(Json::as_bool).is_some());
    }

    /// Structurally valid requests with fuzzed methods/ids/params are
    /// answered, and `ok:true` can only come from the known methods
    /// that need no session (nothing here opens one).
    #[test]
    fn fuzzed_requests_never_succeed_without_a_session(
        method in "[a-z-]{1,12}",
        session in any::<u64>(),
        node in any::<i64>(),
    ) {
        let engine = engine();
        let line = format!(
            r#"{{"id":9,"method":"{method}","params":{{"session":{session},"node":{node},"path":"/dev/null/x"}}}}"#
        );
        let text = engine.handle_line(&line);
        let v = json::parse(&text).unwrap();
        let ok = v.get("ok").and_then(Json::as_bool).unwrap();
        if ok {
            prop_assert!(
                matches!(method.as_str(), "stats" | "ping" | "shutdown"),
                "unexpected success for method {method}"
            );
        }
    }

    /// Truncating a valid request at any byte boundary still yields a
    /// structured reply (parse or invalid, never a panic or hang).
    #[test]
    fn truncations_of_a_valid_request_are_safe(cut in 0usize..66) {
        let engine = engine();
        let full = r#"{"id":3,"method":"expand","params":{"session":1,"node":2}}"#;
        let line = &full[..cut.min(full.len())];
        let text = engine.handle_line(line);
        let v = json::parse(&text).unwrap();
        prop_assert!(v.get("ok").and_then(Json::as_bool).is_some());
    }
}
