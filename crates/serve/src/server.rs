//! The TCP front end: thread-per-connection over a nonblocking accept
//! loop, so shutdown is observed within one poll tick even with no
//! incoming connections.
//!
//! Connection handling is deliberately boring: read one line, hand it
//! to [`Engine::handle_line`], write one line back. Robustness lives in
//! the bounds — a per-read socket timeout (so a stalled client can't
//! pin a thread), an idle timeout (so abandoned connections are
//! reclaimed), and a line-length cap (so a client can't buffer the
//! server into the ground). On shutdown the accept loop stops, every
//! connection finishes the request it is currently processing (the
//! drain), and `run` joins all handler threads before returning.

use crate::Engine;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How often the accept loop and connection reads poll the shutdown
/// flag while idle.
const POLL_TICK: Duration = Duration::from_millis(50);

/// A bound listener plus the engine it feeds.
pub struct Server {
    engine: Arc<Engine>,
    listener: TcpListener,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port; read it back
    /// with [`Server::local_addr`]).
    pub fn bind(engine: Arc<Engine>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server { engine, listener })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve connections until shutdown is requested, then
    /// drain: stop accepting, let in-flight requests finish, join every
    /// connection thread.
    pub fn run(self) {
        let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
        while !self.engine.is_shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let engine = Arc::clone(&self.engine);
                    handlers.push(thread::spawn(move || serve_connection(&engine, stream)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(POLL_TICK);
                }
                Err(_) => thread::sleep(POLL_TICK),
            }
            // Reap finished handlers so a long-lived server doesn't
            // accumulate join handles.
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// Serve one connection: line in, line out, until the peer hangs up,
/// goes idle past the configured timeout, or the server drains.
fn serve_connection(engine: &Engine, stream: TcpStream) {
    let cfg = engine.config().clone();
    // A short read timeout doubles as the shutdown poll tick: reads
    // wake up regularly to check the flag without burning CPU.
    let _ = stream.set_read_timeout(Some(POLL_TICK.max(Duration::from_millis(1))));
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut pending: Vec<u8> = Vec::new();
    let mut line = String::new();
    let mut last_activity = Instant::now();
    loop {
        if engine.is_shutting_down() {
            return;
        }
        if last_activity.elapsed() > cfg.idle_timeout {
            return;
        }
        line.clear();
        match read_bounded_line(&mut reader, &mut pending, &mut line, cfg.max_line_bytes) {
            ReadOutcome::Line => {
                if line.trim().is_empty() {
                    continue;
                }
                last_activity = Instant::now();
                let reply = engine.handle_line(&line);
                if writer
                    .write_all(reply.as_bytes())
                    .and_then(|_| writer.write_all(b"\n"))
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            ReadOutcome::Eof => return,
            ReadOutcome::TooLong => {
                // Reject and drop the connection: past the cap we can't
                // resynchronize on line boundaries safely.
                engine.stats.errors.fetch_add(1, Ordering::Relaxed);
                let reply = crate::protocol::response(
                    &crate::json::Json::Null,
                    Err(crate::protocol::RequestError::new(
                        "parse",
                        format!("request line exceeds {} bytes", cfg.max_line_bytes),
                    )),
                );
                let _ = writer
                    .write_all(reply.as_bytes())
                    .and_then(|_| writer.write_all(b"\n"))
                    .and_then(|_| writer.flush());
                return;
            }
            ReadOutcome::WouldBlock => continue,
            ReadOutcome::Err => return,
        }
    }
}

enum ReadOutcome {
    Line,
    Eof,
    TooLong,
    WouldBlock,
    Err,
}

/// Read one `\n`-terminated line into `out`, capped at `max` bytes.
/// Bytes read ahead of a newline accumulate in `pending`, which the
/// caller keeps alive across calls so a read timeout mid-line resumes
/// cleanly instead of dropping the partial request.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    pending: &mut Vec<u8>,
    out: &mut String,
    max: usize,
) -> ReadOutcome {
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                // Timeout (possibly mid-line: `pending` holds what we
                // have). The caller re-checks shutdown and idle limits,
                // then calls back in to keep waiting for the newline.
                return ReadOutcome::WouldBlock;
            }
            Err(_) => return ReadOutcome::Err,
        };
        if available.is_empty() {
            return if pending.is_empty() {
                ReadOutcome::Eof
            } else {
                // Unterminated final line: serve it anyway.
                finish_line(std::mem::take(pending), out)
            };
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(available.len());
        pending.extend_from_slice(&available[..take]);
        reader.consume(take);
        if pending.len() > max {
            pending.clear();
            return ReadOutcome::TooLong;
        }
        if newline.is_some() {
            let mut bytes = std::mem::take(pending);
            while bytes.last() == Some(&b'\n') || bytes.last() == Some(&b'\r') {
                bytes.pop();
            }
            return finish_line(bytes, out);
        }
    }
}

fn finish_line(bytes: Vec<u8>, out: &mut String) -> ReadOutcome {
    match String::from_utf8(bytes) {
        Ok(s) => {
            out.push_str(&s);
            ReadOutcome::Line
        }
        Err(_) => {
            // Non-UTF-8 request: hand the caller a line the JSON parser
            // will reject, producing a structured `parse` reply instead
            // of tearing down the connection.
            out.push('\u{fffd}');
            ReadOutcome::Line
        }
    }
}
