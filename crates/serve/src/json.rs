//! JSON value tree for the protocol surface.
//!
//! The codec itself lives in [`callpath_core::jsonval`] so the analyze
//! layer can parse `BENCH_*.json` records and emit machine-readable
//! reports with the same hostile-input-hardened parser; this module
//! re-exports it under the historical `serve::json` path.

pub use callpath_core::jsonval::*;
