//! The bounded session table: many independent viewer [`Session`]s
//! multiplexed over shared immutable [`Experiment`]s, with LRU
//! eviction once the table is full.
//!
//! # Why the `'static` lifetime hack is sound
//!
//! `Session<'e>` borrows `&'e Experiment`. A table of sessions opened
//! at arbitrary times over arbitrary databases can't express those
//! borrows in the type system, so each slot erases the lifetime: the
//! session is stored as `Session<'static>` pointing into an
//! `Arc<Experiment>` held by the same slot. This is sound because:
//!
//! 1. the `Experiment` lives on the heap behind an `Arc`, so its
//!    address is stable for the `Arc`'s whole life — moving the slot
//!    (e.g. when the `HashMap` rehashes) moves the pointer, not the
//!    pointee;
//! 2. `_exp` is declared *after* `session`, so the session (and every
//!    internal borrow) drops before the `Arc` it points into;
//! 3. a `Session` never takes `&mut Experiment`: lazy column faults
//!    and attribution caches go through `OnceLock`/`RwLock` interior
//!    mutability, which is exactly what makes sharing one experiment
//!    across many sessions safe in the first place (DESIGN.md §10).

use callpath_core::prelude::{Experiment, SourceStore};
use callpath_viewer::Session;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One resident session plus the experiment that keeps it alive.
pub struct SessionSlot {
    /// The interactive session, lifetime-erased (see module docs).
    /// Field order matters: must drop before `_exp`.
    pub session: Mutex<Session<'static>>,
    /// Database path the session was opened on (reported by `stats`).
    pub path: String,
    /// Logical-clock stamp of the last request that touched this slot
    /// (atomic so `touch` can stamp through a shared `Arc`).
    last_used: AtomicU64,
    /// Keeps the experiment (and the mmap behind it) alive.
    _exp: Arc<Experiment>,
}

impl SessionSlot {
    fn new(exp: Arc<Experiment>, path: String, now: u64) -> Self {
        // SAFETY: see the module-level soundness argument. The borrow
        // is created from the Arc's stable heap pointer and outlived
        // by `_exp` in the same struct; declaration order guarantees
        // the session drops first.
        let session = {
            let exp_static: &'static Experiment = unsafe { &*Arc::as_ptr(&exp) };
            Session::new(exp_static, SourceStore::new())
        };
        SessionSlot {
            session: Mutex::new(session),
            path,
            last_used: AtomicU64::new(now),
            _exp: exp,
        }
    }
}

/// Bounded id → slot map with least-recently-used eviction.
pub struct SessionTable {
    slots: HashMap<u64, Arc<SessionSlot>>,
    next_id: u64,
    clock: u64,
    capacity: usize,
    evictions: u64,
}

impl SessionTable {
    /// An empty table holding at most `capacity` live sessions.
    pub fn new(capacity: usize) -> Self {
        SessionTable {
            slots: HashMap::new(),
            next_id: 1,
            clock: 0,
            capacity: capacity.max(1),
            evictions: 0,
        }
    }

    /// Open a new session over `exp`; evicts the least-recently-used
    /// slot first if the table is full. Returns the new session id.
    pub fn insert(&mut self, exp: Arc<Experiment>, path: String) -> u64 {
        while self.slots.len() >= self.capacity {
            if let Some(&victim) = self
                .slots
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(id, _)| id)
            {
                self.slots.remove(&victim);
                self.evictions += 1;
            } else {
                break;
            }
        }
        self.clock += 1;
        let id = self.next_id;
        self.next_id += 1;
        self.slots
            .insert(id, Arc::new(SessionSlot::new(exp, path, self.clock)));
        id
    }

    /// Look up a session and stamp it most-recently-used. The returned
    /// `Arc` keeps the slot alive even if a concurrent `open` evicts it
    /// from the table mid-request.
    pub fn touch(&mut self, id: u64) -> Option<Arc<SessionSlot>> {
        self.clock += 1;
        let slot = self.slots.get(&id)?;
        slot.last_used.store(self.clock, Ordering::Relaxed);
        Some(Arc::clone(slot))
    }

    /// Drop a session explicitly. Returns `true` if it existed.
    pub fn remove(&mut self, id: u64) -> bool {
        self.slots.remove(&id).is_some()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// How many slots eviction has reclaimed since startup.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}
