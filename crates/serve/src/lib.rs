#![warn(missing_docs)]
//! # callpath-serve
//!
//! The serving path: a resident daemon that keeps experiment databases
//! open and multiplexes many independent viewer [`Session`]s over
//! shared immutable [`Experiment`]s (DESIGN.md §14).
//!
//! The paper's presentation model assumes an interactive viewer; the
//! one-shot CLI binaries pay a full open per invocation. This crate
//! amortizes that: databases are opened once via `expdb::open_lazy_path`
//! (mmap-backed for v2.1, so the OS page cache is the working set) and
//! every client gets its own [`Session`] — expansion state, sort
//! column, zoom, flatten level — over the same experiment. The
//! generation-stamped attribution/sort caches and `OnceLock` lazy
//! column slots make the sharing safe without any per-request locking
//! of the experiment itself.
//!
//! Layering:
//!
//! * [`json`] — a small, hostile-input-safe JSON codec (no external
//!   parser dependency);
//! * [`protocol`] — request validation and reply framing;
//! * [`sessions`] — the bounded LRU session table;
//! * [`Engine`] — transport-independent dispatch: one request line in,
//!   one reply line out, panics caught and converted into `internal`
//!   errors;
//! * [`server`] — the TCP front end: thread-per-connection, idle and
//!   I/O timeouts, graceful drain on shutdown.
//!
//! [`Session`]: callpath_viewer::Session
//! [`Experiment`]: callpath_core::prelude::Experiment

pub mod json;
pub mod protocol;
pub mod server;
pub mod sessions;

use crate::json::{obj, Json};
use crate::protocol::{parse_request, response, Request, RequestError};
use crate::sessions::{SessionSlot, SessionTable};
use callpath_core::prelude::{ColumnId, Experiment};
use callpath_obs as obs;
use callpath_viewer::{Command, Session};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use server::Server;

/// Tunables for a server instance. `Default` matches the documented
/// daemon defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most sessions held at once; opening past this evicts the
    /// least-recently-used session.
    pub max_sessions: usize,
    /// Connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Per-read/write socket timeout (bounds how long one request can
    /// hold a connection thread in I/O).
    pub io_timeout: Duration,
    /// Longest accepted request line; longer lines are rejected with a
    /// `parse` error and the connection is dropped.
    pub max_line_bytes: usize,
    /// Whether the `shutdown` RPC is honored (the CLI flag
    /// `--no-shutdown-rpc` clears it; SIGINT always works).
    pub allow_shutdown_rpc: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 64,
            idle_timeout: Duration::from_secs(300),
            io_timeout: Duration::from_secs(30),
            max_line_bytes: 1 << 20,
            allow_shutdown_rpc: true,
        }
    }
}

/// Fixed-size power-of-two latency histogram: bucket `i` counts
/// requests with `ns` in `[2^i, 2^(i+1))`. Coarse (bucket-boundary
/// resolution) but lock-free and always-on; the serve smoke bench
/// records exact client-side latencies alongside it.
pub struct LatencyHist {
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: [const { AtomicU64::new(0) }; 64],
        }
    }
}

impl LatencyHist {
    /// Record one request that took `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        let bucket = (64 - ns.max(1).leading_zeros() as usize).min(63);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Approximate quantile in nanoseconds (`q` in [0, 1]): the lower
    /// bound of the bucket holding the q-th sample. Returns 0 with no
    /// samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        1u64 << 62
    }
}

/// Always-on request counters, mirrored into the `obs` snapshot as
/// `serve.*` so `--stats` surfaces them next to pool and cache stats.
#[derive(Default)]
pub struct ServeStats {
    /// Total requests handled (including rejected ones).
    pub requests: AtomicU64,
    /// Requests answered with `ok:false`.
    pub errors: AtomicU64,
    /// Sessions opened since startup.
    pub sessions_opened: AtomicU64,
}

/// Transport-independent request dispatcher: the whole server minus
/// the sockets. Tests drive it directly via [`Engine::handle_line`];
/// the TCP front end in [`server`] feeds it one line per request.
pub struct Engine {
    cfg: ServeConfig,
    sessions: Mutex<SessionTable>,
    /// Experiments cache keyed by canonicalized path, so two sessions
    /// on the same database share one mmap and one set of lazy
    /// column slots.
    experiments: Mutex<HashMap<PathBuf, Arc<Experiment>>>,
    /// Ensemble directories cache (same keying). A directory is tiny —
    /// labels, fingerprints and per-metric totals — so `ensemble-stats`
    /// after the first request never touches the file again.
    ensembles: Mutex<HashMap<PathBuf, Arc<callpath_expdb::ens::Directory>>>,
    /// Request counters (also mirrored to `obs`).
    pub stats: ServeStats,
    /// In-process request latency histogram.
    pub latency: LatencyHist,
    shutdown: Arc<AtomicBool>,
    started: Instant,
}

impl Engine {
    /// A fresh engine with no sessions.
    pub fn new(cfg: ServeConfig) -> Self {
        let capacity = cfg.max_sessions.max(1);
        Engine {
            cfg,
            sessions: Mutex::new(SessionTable::new(capacity)),
            experiments: Mutex::new(HashMap::new()),
            ensembles: Mutex::new(HashMap::new()),
            stats: ServeStats::default(),
            latency: LatencyHist::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
        }
    }

    /// The tunables this engine was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Shared flag that turns true once shutdown is requested (by the
    /// `shutdown` RPC or the binary's SIGINT handler).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Open `path` (or return the cached experiment for it). Shared by
    /// the `open` RPC and the binary's preload arguments.
    pub fn load_experiment(&self, path: &str) -> Result<Arc<Experiment>, String> {
        let key = std::fs::canonicalize(path).unwrap_or_else(|_| PathBuf::from(path));
        if let Some(exp) = self.experiments.lock().get(&key) {
            return Ok(Arc::clone(exp));
        }
        let exp = open_database(path)?;
        let exp = Arc::new(exp);
        // Double-open race is benign: last writer wins, both Arcs are
        // valid, sessions keep whichever they were built on alive.
        self.experiments.lock().insert(key, Arc::clone(&exp));
        Ok(exp)
    }

    /// Handle one request line, returning the reply line (no trailing
    /// newline). Never panics: dispatch runs under `catch_unwind` and a
    /// panic becomes an `internal` error reply.
    pub fn handle_line(&self, line: &str) -> String {
        let start = Instant::now();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        obs::count("serve.requests", 1);
        let (id, parsed) = parse_request(line);
        let result = match parsed {
            Err(e) => Err(e),
            Ok(request) => catch_unwind(AssertUnwindSafe(|| self.dispatch(request)))
                .unwrap_or_else(|payload| {
                    let detail = panic_message(&payload);
                    obs::error(&format!("serve: request panicked: {detail}"));
                    Err(RequestError::new(
                        "internal",
                        format!("request handler panicked: {detail}"),
                    ))
                }),
        };
        if result.is_err() {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            obs::count("serve.errors", 1);
        }
        let ns = start.elapsed().as_nanos() as u64;
        self.latency.record(ns);
        obs::observe("serve.request_ns", ns);
        response(&id, result)
    }

    fn dispatch(&self, request: Request) -> Result<Json, RequestError> {
        match request {
            Request::Open { path } => self.do_open(&path),
            Request::Close { session } => {
                if self.sessions.lock().remove(session) {
                    Ok(obj(vec![("closed", Json::Bool(true))]))
                } else {
                    Err(unknown_session(session))
                }
            }
            Request::Render { session } => self.with_session(session, |s| Ok(render_result(s))),
            Request::Expand { session, node } => self.command(session, Command::Expand(node)),
            Request::Collapse { session, node } => self.command(session, Command::Collapse(node)),
            Request::Select { session, node } => self.command(session, Command::Select(node)),
            Request::Zoom { session, node } => self.command(session, Command::Zoom(node)),
            Request::Unzoom { session } => self.command(session, Command::Unzoom),
            Request::Sort { session, column } => {
                self.command(session, Command::SortBy(ColumnId(column)))
            }
            Request::SortName { session, on } => self.command(session, Command::SortByName(on)),
            Request::SwitchView { session, view } => {
                self.command(session, Command::SwitchView(view))
            }
            Request::HotPath { session, threshold } => self.with_session(session, |s| {
                if let Some(t) = threshold {
                    s.apply(Command::SetThreshold(t))
                        .map_err(|e| RequestError::new("command", e))?;
                }
                s.apply(Command::HotPath)
                    .map_err(|e| RequestError::new("command", e))?;
                Ok(render_result(s))
            }),
            Request::Flatten { session } => self.command(session, Command::Flatten),
            Request::Unflatten { session } => self.command(session, Command::Unflatten),
            Request::Find { session, needle } => self.command(session, Command::Find(needle)),
            Request::EnsembleStats { path, top } => self.do_ensemble_stats(&path, top),
            Request::Analyze {
                path,
                query,
                score,
                top,
            } => self.do_analyze(&path, &query, score.as_deref(), top),
            Request::Stats => Ok(self.stats_result()),
            Request::Ping => Ok(obj(vec![("pong", Json::Bool(true))])),
            Request::Shutdown => {
                if !self.cfg.allow_shutdown_rpc {
                    return Err(RequestError::new(
                        "forbidden",
                        "shutdown over RPC is disabled on this server",
                    ));
                }
                self.request_shutdown();
                Ok(obj(vec![("draining", Json::Bool(true))]))
            }
        }
    }

    /// Load the ensemble directory for `path` (cached by canonical
    /// path). The open is topology-only: no stat columns are faulted,
    /// and the whole container is integrity-checked by the v2.1 open.
    fn ensemble_directory(
        &self,
        path: &str,
    ) -> Result<Arc<callpath_expdb::ens::Directory>, String> {
        let key = std::fs::canonicalize(path).unwrap_or_else(|_| PathBuf::from(path));
        if let Some(dir) = self.ensembles.lock().get(&key) {
            return Ok(Arc::clone(dir));
        }
        let ensemble =
            callpath_expdb::ens::open(std::path::Path::new(path)).map_err(|e| e.to_string())?;
        let dir = Arc::new(ensemble.dir);
        obs::count("serve.ensemble_opens", 1);
        self.ensembles.lock().insert(key, Arc::clone(&dir));
        Ok(dir)
    }

    fn do_ensemble_stats(&self, path: &str, top: u32) -> Result<Json, RequestError> {
        let dir = self
            .ensemble_directory(path)
            .map_err(|e| RequestError::new("open", e))?;
        let scores = callpath_ensemble::outlier_scores(&dir);
        let outliers: Vec<Json> = scores
            .iter()
            .take(top as usize)
            .map(|&(r, score)| {
                obj(vec![
                    ("run", Json::Num(r as f64)),
                    ("label", Json::Str(dir.runs[r].label.clone())),
                    ("score", Json::Num(score)),
                ])
            })
            .collect();
        Ok(obj(vec![
            ("runs", Json::Num(dir.runs.len() as f64)),
            (
                "metrics",
                Json::Arr(
                    dir.metric_names
                        .iter()
                        .map(|n| Json::Str(n.clone()))
                        .collect(),
                ),
            ),
            ("outliers", Json::Arr(outliers)),
        ]))
    }

    /// Run an analysis query against the (cached) experiment for
    /// `path`. A `.cpens` ensemble works unchanged — it is a valid
    /// v2.1 database, so the query sees its stat columns. Query text
    /// errors (bad syntax, unknown columns) come back as `command`
    /// errors; only the file open itself is an `open` error.
    fn do_analyze(
        &self,
        path: &str,
        query: &str,
        score: Option<&str>,
        top: u32,
    ) -> Result<Json, RequestError> {
        let exp = self
            .load_experiment(path)
            .map_err(|e| RequestError::new("open", e))?;
        let report = callpath_analyze::run_query(&exp, query, score, top as usize, 1)
            .map_err(|e| RequestError::new("command", e))?;
        obs::count("serve.analyze", 1);
        Ok(report.to_json())
    }

    fn do_open(&self, path: &str) -> Result<Json, RequestError> {
        let exp = self
            .load_experiment(path)
            .map_err(|e| RequestError::new("open", e))?;
        let nodes = exp.cct.len();
        let columns: Vec<Json> = exp
            .columns
            .descs()
            .iter()
            .map(|desc| Json::Str(desc.name.clone()))
            .collect();
        let mut table = self.sessions.lock();
        let before = table.evictions();
        let id = table.insert(exp, path.to_owned());
        let evicted = table.evictions() - before;
        drop(table);
        self.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        obs::count("serve.sessions_opened", 1);
        if evicted > 0 {
            obs::count("serve.evictions", evicted);
        }
        Ok(obj(vec![
            ("session", Json::Num(id as f64)),
            ("nodes", Json::Num(nodes as f64)),
            ("columns", Json::Arr(columns)),
        ]))
    }

    /// Run `f` against a session, stamping it most-recently-used. The
    /// slot's `Arc` is cloned out of the table first so a concurrent
    /// `open` evicting this session mid-request can't pull the
    /// experiment out from under it.
    fn with_session<F>(&self, id: u64, f: F) -> Result<Json, RequestError>
    where
        F: FnOnce(&mut Session<'static>) -> Result<Json, RequestError>,
    {
        let slot: Arc<SessionSlot> = self
            .sessions
            .lock()
            .touch(id)
            .ok_or_else(|| unknown_session(id))?;
        let mut session = slot.session.lock();
        f(&mut session)
    }

    fn command(&self, id: u64, cmd: Command) -> Result<Json, RequestError> {
        self.with_session(id, |s| {
            s.apply(cmd).map_err(|e| RequestError::new("command", e))?;
            Ok(render_result(s))
        })
    }

    fn stats_result(&self) -> Json {
        let table = self.sessions.lock();
        let sessions = table.len();
        let evictions = table.evictions();
        drop(table);
        obj(vec![
            ("sessions", Json::Num(sessions as f64)),
            (
                "requests",
                Json::Num(self.stats.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "errors",
                Json::Num(self.stats.errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "sessions_opened",
                Json::Num(self.stats.sessions_opened.load(Ordering::Relaxed) as f64),
            ),
            ("evictions", Json::Num(evictions as f64)),
            (
                "p50_latency_ns",
                Json::Num(self.latency.quantile(0.50) as f64),
            ),
            (
                "p95_latency_ns",
                Json::Num(self.latency.quantile(0.95) as f64),
            ),
            (
                "uptime_ms",
                Json::Num(self.started.elapsed().as_millis() as f64),
            ),
        ])
    }

    /// Live session count (for the binary's drain log line).
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }
}

fn unknown_session(id: u64) -> RequestError {
    RequestError::new(
        "unknown-session",
        format!("no session {id} (never opened, closed, or evicted by LRU)"),
    )
}

fn render_result(session: &mut Session<'static>) -> Json {
    let (render, rows) = session.render_numbered();
    Json::Obj(vec![
        ("render".to_owned(), Json::Str(render)),
        (
            "rows".to_owned(),
            Json::Arr(rows.into_iter().map(|n| Json::Num(n as f64)).collect()),
        ),
    ])
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Open a database file of any supported flavor: v2/v2.1 containers
/// open lazily (mmap-backed), v1 decodes eagerly, anything else is
/// tried as XML.
fn open_database(path: &str) -> Result<Experiment, String> {
    let p = std::path::Path::new(path);
    let mut prefix = [0u8; 8];
    let n = {
        use std::io::Read;
        let mut f = std::fs::File::open(p).map_err(|e| format!("cannot open {path}: {e}"))?;
        f.read(&mut prefix)
            .map_err(|e| format!("cannot read {path}: {e}"))?
    };
    match callpath_expdb::sniff_version(&prefix[..n]) {
        Some(2) => callpath_expdb::open_lazy_path(p).map_err(|e| e.to_string()),
        Some(_) => {
            let bytes = std::fs::read(p).map_err(|e| format!("cannot read {path}: {e}"))?;
            callpath_expdb::from_binary(&bytes).map_err(|e| e.to_string())
        }
        None => {
            let bytes = std::fs::read(p).map_err(|e| format!("cannot read {path}: {e}"))?;
            let text = String::from_utf8(bytes)
                .map_err(|_| format!("{path} is neither CPDB nor UTF-8"))?;
            callpath_expdb::from_xml(&text).map_err(|e| e.to_string())
        }
    }
}
