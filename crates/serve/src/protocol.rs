//! The wire protocol: line-delimited JSON requests and replies.
//!
//! One request per line:
//!
//! ```text
//! {"id": 1, "method": "open",   "params": {"path": "s3d.cpdb"}}
//! {"id": 2, "method": "expand", "params": {"session": 1, "node": 4}}
//! ```
//!
//! One reply per line, echoing `id` (or `null` when the request was
//! too malformed to carry one):
//!
//! ```text
//! {"id":1,"ok":true,"result":{"session":1,"nodes":120,"columns":[…]}}
//! {"id":2,"ok":false,"error":{"code":"command","message":"scope 4 is not visible…"}}
//! ```
//!
//! Every failure — truncated JSON, unknown methods, wrong parameter
//! types, out-of-range ids, commands the session rejects — comes back
//! as a structured `ok:false` reply; nothing a client sends can panic
//! the server (see `tests/protocol_fuzz.rs`).

use crate::json::{self, obj, Json};
use callpath_core::prelude::ViewKind;

/// A structured request failure: `code` is a small machine-readable
/// vocabulary, `message` is for humans.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// One of: `parse`, `invalid`, `unknown-method`, `unknown-session`,
    /// `open`, `command`, `forbidden`, `internal`.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    pub(crate) fn new(code: &'static str, message: impl Into<String>) -> Self {
        RequestError {
            code,
            message: message.into(),
        }
    }

    pub(crate) fn invalid(message: impl Into<String>) -> Self {
        RequestError::new("invalid", message)
    }
}

/// A validated protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a database and start a fresh session on it.
    Open {
        /// Filesystem path of the database (v1, v2, v2.1 or XML).
        path: String,
    },
    /// Drop a session explicitly (instead of waiting for eviction).
    Close {
        /// Session to drop.
        session: u64,
    },
    /// Render the session's current view.
    Render {
        /// Target session.
        session: u64,
    },
    /// Expand a visible scope.
    Expand {
        /// Target session.
        session: u64,
        /// Scope (node id from a previous reply's `rows`).
        node: u32,
    },
    /// Collapse a scope.
    Collapse {
        /// Target session.
        session: u64,
        /// Scope to collapse.
        node: u32,
    },
    /// Select a visible scope (shows its source pane).
    Select {
        /// Target session.
        session: u64,
        /// Scope to select.
        node: u32,
    },
    /// Zoom into a subtree.
    Zoom {
        /// Target session.
        session: u64,
        /// Subtree root.
        node: u32,
    },
    /// Undo a zoom.
    Unzoom {
        /// Target session.
        session: u64,
    },
    /// Sort by a metric column.
    Sort {
        /// Target session.
        session: u64,
        /// Column index.
        column: u32,
    },
    /// Toggle alphabetical sorting.
    SortName {
        /// Target session.
        session: u64,
        /// `true` = sort by name, `false` = back to the metric column.
        on: bool,
    },
    /// Switch between the three views.
    SwitchView {
        /// Target session.
        session: u64,
        /// Which view.
        view: ViewKind,
    },
    /// Run hot-path analysis from the selection (or the top).
    HotPath {
        /// Target session.
        session: u64,
        /// Optional threshold override in (0, 1].
        threshold: Option<f64>,
    },
    /// Flat View: strip one hierarchy layer.
    Flatten {
        /// Target session.
        session: u64,
    },
    /// Flat View: restore one hierarchy layer.
    Unflatten {
        /// Target session.
        session: u64,
    },
    /// Search by name, expand ancestors, select the first match.
    Find {
        /// Target session.
        session: u64,
        /// Substring to look for (case-sensitive).
        needle: String,
    },
    /// Cross-run statistics of a `.cpens` ensemble database: run
    /// count, metric names and the top outlier runs. Served from the
    /// ensemble directory alone — no metric columns are faulted.
    EnsembleStats {
        /// Filesystem path of the ensemble database.
        path: String,
        /// How many outlier runs to return (bounded at 1000).
        top: u32,
    },
    /// Evaluate an analysis query (the `callpath-analyze` predicate
    /// language) over a database and return the matching call paths.
    /// Only the columns the query names are faulted.
    Analyze {
        /// Filesystem path of the database (v2.1 or `.cpens`).
        path: String,
        /// Query text, e.g. `proc ~ "^MPI_" and incl("cycles") > 5%`.
        query: String,
        /// Optional exact score column name (defaults to the first).
        score: Option<String>,
        /// How many hits to return (bounded at 1000).
        top: u32,
    },
    /// Server statistics (sessions, requests, latency quantiles).
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain and exit.
    Shutdown,
}

/// Parse one request line. Always returns the echoable `id` (possibly
/// `Json::Null`) alongside the parse outcome, so even a reply to a
/// broken request can carry the client's correlation id when one was
/// readable.
pub fn parse_request(line: &str) -> (Json, Result<Request, RequestError>) {
    let value = match json::parse(line.trim()) {
        Ok(v) => v,
        Err(e) => return (Json::Null, Err(RequestError::new("parse", e))),
    };
    let id = value.get("id").cloned().unwrap_or(Json::Null);
    let request = validate(&value);
    (id, request)
}

fn validate(value: &Json) -> Result<Request, RequestError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(RequestError::invalid("request must be a JSON object"));
    }
    let method = value
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::invalid("missing string field 'method'"))?;
    let empty = Json::Obj(Vec::new());
    let params = match value.get("params") {
        None => &empty,
        Some(p @ Json::Obj(_)) => p,
        Some(_) => return Err(RequestError::invalid("'params' must be an object")),
    };

    let session = || -> Result<u64, RequestError> {
        params
            .get("session")
            .and_then(Json::as_u64)
            .ok_or_else(|| RequestError::invalid("missing integer field 'session'"))
    };
    let node = || -> Result<u32, RequestError> {
        let n = params
            .get("node")
            .and_then(Json::as_u64)
            .ok_or_else(|| RequestError::invalid("missing integer field 'node'"))?;
        u32::try_from(n).map_err(|_| RequestError::invalid(format!("node {n} out of range")))
    };

    match method {
        "open" => Ok(Request::Open {
            path: params
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| RequestError::invalid("missing string field 'path'"))?
                .to_owned(),
        }),
        "close" => Ok(Request::Close {
            session: session()?,
        }),
        "render" => Ok(Request::Render {
            session: session()?,
        }),
        "expand" => Ok(Request::Expand {
            session: session()?,
            node: node()?,
        }),
        "collapse" => Ok(Request::Collapse {
            session: session()?,
            node: node()?,
        }),
        "select" => Ok(Request::Select {
            session: session()?,
            node: node()?,
        }),
        "zoom" => Ok(Request::Zoom {
            session: session()?,
            node: node()?,
        }),
        "unzoom" => Ok(Request::Unzoom {
            session: session()?,
        }),
        "sort" => {
            let column = params
                .get("column")
                .and_then(Json::as_u64)
                .ok_or_else(|| RequestError::invalid("missing integer field 'column'"))?;
            Ok(Request::Sort {
                session: session()?,
                column: u32::try_from(column)
                    .map_err(|_| RequestError::invalid(format!("column {column} out of range")))?,
            })
        }
        "sort-name" => Ok(Request::SortName {
            session: session()?,
            on: params.get("on").and_then(Json::as_bool).unwrap_or(true),
        }),
        "view" => {
            let name = params
                .get("view")
                .and_then(Json::as_str)
                .ok_or_else(|| RequestError::invalid("missing string field 'view'"))?;
            let view = match name {
                "ccv" => ViewKind::CallingContext,
                "callers" => ViewKind::Callers,
                "flat" => ViewKind::Flat,
                other => {
                    return Err(RequestError::invalid(format!(
                        "unknown view '{other}' (ccv|callers|flat)"
                    )))
                }
            };
            Ok(Request::SwitchView {
                session: session()?,
                view,
            })
        }
        "hot-path" => {
            let threshold = match params.get("threshold") {
                None => None,
                Some(v) => Some(
                    v.as_f64()
                        .ok_or_else(|| RequestError::invalid("'threshold' must be a number"))?,
                ),
            };
            Ok(Request::HotPath {
                session: session()?,
                threshold,
            })
        }
        "flatten" => Ok(Request::Flatten {
            session: session()?,
        }),
        "unflatten" => Ok(Request::Unflatten {
            session: session()?,
        }),
        "find" => Ok(Request::Find {
            session: session()?,
            needle: params
                .get("needle")
                .and_then(Json::as_str)
                .ok_or_else(|| RequestError::invalid("missing string field 'needle'"))?
                .to_owned(),
        }),
        "ensemble-stats" => {
            let path = params
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| RequestError::invalid("missing string field 'path'"))?
                .to_owned();
            let top = match params.get("top") {
                None => 10,
                Some(v) => {
                    let t = v
                        .as_u64()
                        .ok_or_else(|| RequestError::invalid("'top' must be an integer"))?;
                    u32::try_from(t)
                        .ok()
                        .filter(|t| *t <= 1000)
                        .ok_or_else(|| {
                            RequestError::invalid(format!("top {t} out of range (max 1000)"))
                        })?
                }
            };
            Ok(Request::EnsembleStats { path, top })
        }
        "analyze" => {
            let path = params
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| RequestError::invalid("missing string field 'path'"))?
                .to_owned();
            let query = params
                .get("query")
                .and_then(Json::as_str)
                .ok_or_else(|| RequestError::invalid("missing string field 'query'"))?
                .to_owned();
            // The size bound is enforced here, before the text ever
            // reaches the query parser: an oversized predicate is a
            // protocol-level rejection, not a query error.
            if query.len() > callpath_analyze::query::MAX_QUERY {
                return Err(RequestError::invalid(format!(
                    "oversized predicate ({} bytes, max {})",
                    query.len(),
                    callpath_analyze::query::MAX_QUERY
                )));
            }
            let score = match params.get("score") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| RequestError::invalid("'score' must be a string"))?
                        .to_owned(),
                ),
            };
            let top = match params.get("top") {
                None => 20,
                Some(v) => {
                    let t = v
                        .as_u64()
                        .ok_or_else(|| RequestError::invalid("'top' must be an integer"))?;
                    u32::try_from(t)
                        .ok()
                        .filter(|t| *t <= 1000)
                        .ok_or_else(|| {
                            RequestError::invalid(format!("top {t} out of range (max 1000)"))
                        })?
                }
            };
            Ok(Request::Analyze {
                path,
                query,
                score,
                top,
            })
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(RequestError::new(
            "unknown-method",
            format!("unknown method '{other}'"),
        )),
    }
}

/// Render a reply line (no trailing newline) for `result`, echoing `id`.
pub fn response(id: &Json, result: Result<Json, RequestError>) -> String {
    let body = match result {
        Ok(value) => obj(vec![
            ("id", id.clone()),
            ("ok", Json::Bool(true)),
            ("result", value),
        ]),
        Err(e) => obj(vec![
            ("id", id.clone()),
            ("ok", Json::Bool(false)),
            (
                "error",
                obj(vec![
                    ("code", Json::Str(e.code.to_owned())),
                    ("message", Json::Str(e.message)),
                ]),
            ),
        ]),
    };
    body.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_shapes() {
        let (id, req) = parse_request(r#"{"id":1,"method":"open","params":{"path":"x.cpdb"}}"#);
        assert_eq!(id, Json::Num(1.0));
        assert_eq!(
            req.unwrap(),
            Request::Open {
                path: "x.cpdb".into()
            }
        );

        let (_, req) = parse_request(r#"{"method":"expand","params":{"session":3,"node":9}}"#);
        assert_eq!(
            req.unwrap(),
            Request::Expand {
                session: 3,
                node: 9
            }
        );

        let (_, req) = parse_request(r#"{"method":"hot-path","params":{"session":1}}"#);
        assert_eq!(
            req.unwrap(),
            Request::HotPath {
                session: 1,
                threshold: None
            }
        );
    }

    #[test]
    fn ensemble_stats_defaults_and_bounds_top() {
        let (_, req) = parse_request(r#"{"method":"ensemble-stats","params":{"path":"e.cpens"}}"#);
        assert_eq!(
            req.unwrap(),
            Request::EnsembleStats {
                path: "e.cpens".into(),
                top: 10
            }
        );
        let (_, req) =
            parse_request(r#"{"method":"ensemble-stats","params":{"path":"e.cpens","top":1000}}"#);
        assert_eq!(
            req.unwrap(),
            Request::EnsembleStats {
                path: "e.cpens".into(),
                top: 1000
            }
        );
        for params in [r#"{"path":"e","top":1001}"#, r#"{"path":"e","top":-3}"#] {
            let (_, req) = parse_request(&format!(
                r#"{{"method":"ensemble-stats","params":{params}}}"#
            ));
            assert_eq!(req.unwrap_err().code, "invalid", "{params}");
        }
    }

    #[test]
    fn id_survives_a_bad_method() {
        let (id, req) = parse_request(r#"{"id":"abc","method":"frobnicate"}"#);
        assert_eq!(id, Json::Str("abc".into()));
        assert_eq!(req.unwrap_err().code, "unknown-method");
    }

    #[test]
    fn truncated_json_is_a_parse_error() {
        let (id, req) = parse_request(r#"{"id":1,"met"#);
        assert_eq!(id, Json::Null);
        assert_eq!(req.unwrap_err().code, "parse");
    }

    #[test]
    fn out_of_range_node_is_rejected_at_the_boundary() {
        let (_, req) =
            parse_request(r#"{"method":"expand","params":{"session":1,"node":4294967296}}"#);
        assert_eq!(req.unwrap_err().code, "invalid");
        let (_, req) = parse_request(r#"{"method":"expand","params":{"session":1,"node":-2}}"#);
        assert_eq!(req.unwrap_err().code, "invalid");
        let (_, req) = parse_request(r#"{"method":"expand","params":{"session":1,"node":1.5}}"#);
        assert_eq!(req.unwrap_err().code, "invalid");
    }

    #[test]
    fn wrong_param_types_are_invalid() {
        for line in [
            r#"{"method":"open","params":{"path":7}}"#,
            r#"{"method":"render","params":{"session":"one"}}"#,
            r#"{"method":"view","params":{"session":1,"view":"sideways"}}"#,
            r#"{"method":"open","params":[1,2]}"#,
            r#"[1,2,3]"#,
            r#""just a string""#,
        ] {
            let (_, req) = parse_request(line);
            assert_eq!(req.unwrap_err().code, "invalid", "{line}");
        }
    }

    #[test]
    fn responses_echo_ids_and_carry_codes() {
        let ok = response(&Json::Num(4.0), Ok(obj(vec![("pong", Json::Bool(true))])));
        assert_eq!(ok, r#"{"id":4,"ok":true,"result":{"pong":true}}"#);
        let err = response(
            &Json::Null,
            Err(RequestError::new("parse", "unexpected end of input")),
        );
        assert!(err.contains(r#""ok":false"#));
        assert!(err.contains(r#""code":"parse""#));
    }
}
