//! The lowered "binary" image: what the simulated compiler produces and
//! what both the CPU interpreter executes and `callpath-structure`
//! analyzes.
//!
//! An image is a dense instruction stream (address = index), a line map
//! (one source location per instruction), procedure bounds, and DWARF-like
//! inline records. Loops are *not* recorded explicitly — like a real
//! binary, they exist only as backward branches, and structure recovery
//! must rediscover them (Section III-D's "information gleaned from the
//! line map of an executable" plus control flow).

use crate::counters::Costs;
use crate::program::{FileIdx, ProcIdx};
use serde::{Deserialize, Serialize};

/// An instruction address: an index into [`Binary::code`].
pub type Addr = u64;

/// Source location of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LineInfo {
    /// Source file index (into [`Binary::files`]).
    pub file: FileIdx,
    /// 1-based source line; 0 = unknown.
    pub line: u32,
}

/// One simulated machine instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstrKind {
    /// Straight-line work consuming hardware events. Non-`scalable` work
    /// ignores the engine's per-rank `work_scale` (a serial section).
    Work {
        /// Hardware events consumed.
        costs: Costs,
        /// False = serial section (ignores the per-rank scale).
        scalable: bool,
    },
    /// Call the procedure `callee`. `max_active` bounds recursion (the
    /// simulated program's termination condition); when the callee already
    /// has that many active frames the call falls through.
    Call {
        /// Target procedure index.
        callee: ProcIdx,
        /// Recursion bound: skip the call when this many frames of the
        /// callee are already active.
        max_active: Option<u32>,
    },
    /// Backward branch closing a counted loop: control returns to `target`
    /// until the loop has executed `trips` times.
    /// Backward branch closing a counted loop: control returns to
    /// `target` until the body has run `trips` times.
    Branch {
        /// Loop header address.
        target: Addr,
        /// Total body executions.
        trips: u32,
    },
    /// SPMD synchronization point.
    /// SPMD synchronization point.
    Barrier {
        /// Barrier identity (paired across ranks by id + occurrence).
        id: u32,
    },
    /// Return from the current procedure.
    Ret,
}

/// An instruction plus its line-map entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    /// What the instruction does.
    pub kind: InstrKind,
    /// Source location from the line map.
    pub loc: LineInfo,
}

/// Procedure bounds within the image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinProc {
    /// Procedure name.
    pub name: String,
    /// Defining file index.
    pub file: FileIdx,
    /// First source line of the definition.
    pub def_line: u32,
    /// Entry address (inclusive).
    pub lo: Addr,
    /// End address (exclusive).
    pub hi: Addr,
    /// False for binary-only routines (no line map).
    pub has_source: bool,
    /// Load module name; `None` = the image's main module.
    pub module: Option<String>,
}

/// A DWARF-style inline record: instructions in `[lo, hi)` originate from
/// `callee_name`, inlined at `call_site`. Nested inlining produces nested
/// (properly contained) ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InlineRange {
    /// First spliced address (inclusive).
    pub lo: Addr,
    /// End of the splice (exclusive).
    pub hi: Addr,
    /// Name of the inlined procedure.
    pub callee_name: String,
    /// Its defining file index.
    pub callee_file: FileIdx,
    /// Its first definition line.
    pub callee_def_line: u32,
    /// Where it was inlined into the host.
    pub call_site: LineInfo,
}

/// A lowered load module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binary {
    /// Main load-module name.
    pub module: String,
    /// Source file names, index = file id.
    pub files: Vec<String>,
    /// Procedure bounds, in ascending address order.
    pub procs: Vec<BinProc>,
    /// The instruction stream; address = index.
    pub code: Vec<Instr>,
    /// DWARF-style inline records (properly nested).
    pub inline_ranges: Vec<InlineRange>,
    /// Index of the entry procedure.
    pub entry: ProcIdx,
}

impl Binary {
    /// The instruction at `addr`.
    pub fn instr(&self, addr: Addr) -> &Instr {
        &self.code[addr as usize]
    }

    /// The procedure containing `addr`, by bounds lookup. Procedures are
    /// laid out in ascending, non-overlapping ranges, so binary search
    /// applies.
    pub fn proc_at(&self, addr: Addr) -> Option<ProcIdx> {
        let i = self.procs.partition_point(|p| p.hi <= addr);
        (i < self.procs.len() && self.procs[i].lo <= addr).then_some(i)
    }

    /// Entry address of procedure `proc`.
    pub fn entry_addr(&self, proc: ProcIdx) -> Addr {
        self.procs[proc].lo
    }

    /// The innermost-to-outermost chain of inline ranges containing `addr`.
    pub fn inline_chain_at(&self, addr: Addr) -> Vec<&InlineRange> {
        let mut chain: Vec<&InlineRange> = self
            .inline_ranges
            .iter()
            .filter(|r| r.lo <= addr && addr < r.hi)
            .collect();
        // Innermost = smallest range first.
        chain.sort_by_key(|r| r.hi - r.lo);
        chain
    }

    /// Sanity checks: addresses dense, proc ranges ordered and disjoint,
    /// branches backward within their procedure, rets present.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_hi = 0;
        for (i, p) in self.procs.iter().enumerate() {
            if p.lo < prev_hi {
                return Err(format!("proc {i} overlaps its predecessor"));
            }
            if p.lo >= p.hi {
                return Err(format!("proc {i} ({}) is empty", p.name));
            }
            if p.hi as usize > self.code.len() {
                return Err(format!("proc {i} extends past code end"));
            }
            if !matches!(self.code[p.hi as usize - 1].kind, InstrKind::Ret) {
                return Err(format!("proc {i} ({}) does not end in Ret", p.name));
            }
            prev_hi = p.hi;
        }
        for (a, instr) in self.code.iter().enumerate() {
            if let InstrKind::Branch { target, .. } = instr.kind {
                if target > a as Addr {
                    return Err(format!("forward branch at {a}"));
                }
                let pa = self.proc_at(a as Addr);
                let pt = self.proc_at(target);
                if pa != pt {
                    return Err(format!("branch at {a} crosses procedure bounds"));
                }
            }
        }
        for r in &self.inline_ranges {
            if r.lo >= r.hi {
                return Err("empty inline range".to_owned());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::program::{Op, ProgramBuilder};

    fn sample_binary() -> Binary {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("app.c");
        let main = b.declare("main", f, 1);
        let work = b.declare("work", f, 10);
        b.body(main, vec![Op::work(2, Costs::cycles(5)), Op::call(3, work)]);
        b.body(
            work,
            vec![Op::looped(11, 3, vec![Op::work(12, Costs::cycles(10))])],
        );
        b.entry(main);
        lower(&b.build())
    }

    #[test]
    fn proc_lookup_by_address() {
        let bin = sample_binary();
        assert!(bin.validate().is_ok());
        for p in 0..bin.procs.len() {
            let bp = &bin.procs[p];
            assert_eq!(bin.proc_at(bp.lo), Some(p));
            assert_eq!(bin.proc_at(bp.hi - 1), Some(p));
        }
        assert_eq!(bin.proc_at(bin.code.len() as Addr), None);
    }

    #[test]
    fn procs_end_in_ret() {
        let bin = sample_binary();
        for p in &bin.procs {
            assert!(matches!(bin.instr(p.hi - 1).kind, InstrKind::Ret));
        }
    }

    #[test]
    fn loops_become_backward_branches() {
        let bin = sample_binary();
        let branches: Vec<(Addr, &Instr)> = bin
            .code
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.kind, InstrKind::Branch { .. }))
            .map(|(a, i)| (a as Addr, i))
            .collect();
        assert_eq!(branches.len(), 1);
        let (addr, instr) = branches[0];
        if let InstrKind::Branch { target, trips } = instr.kind {
            assert!(target < addr);
            assert_eq!(trips, 3);
        }
    }
}
