//! Lowering: compile a high-level [`Program`] to a [`Binary`] image.
//!
//! The pass linearizes procedure bodies into a dense instruction stream,
//! turns counted loops into backward branches, expands `inline` calls by
//! splicing the callee's lowered body into the caller (emitting a
//! DWARF-style [`crate::binary::InlineRange`] record per splice,
//! nested splices included), and appends a `Ret` to every procedure.

use crate::binary::{Addr, BinProc, Binary, InlineRange, Instr, InstrKind, LineInfo};
use crate::program::{Op, Program};

/// Lower `program` to a binary image. Panics on invalid programs (call
/// [`Program::validate`] first if the program is untrusted).
pub fn lower(program: &Program) -> Binary {
    program
        .validate()
        .unwrap_or_else(|e| panic!("lowering invalid program: {e}"));
    let mut ctx = Lowering {
        program,
        code: Vec::new(),
        inline_ranges: Vec::new(),
    };
    let mut procs = Vec::with_capacity(program.procs.len());
    for p in program.procs.iter() {
        let lo = ctx.code.len() as Addr;
        ctx.lower_body(&p.body, p.file);
        // Every procedure ends in Ret; the Ret inherits the definition
        // line so stackless samples attribute somewhere sensible.
        ctx.code.push(Instr {
            kind: InstrKind::Ret,
            loc: LineInfo {
                file: p.file,
                line: p.def_line,
            },
        });
        procs.push(BinProc {
            name: p.name.clone(),
            file: p.file,
            def_line: p.def_line,
            lo,
            hi: ctx.code.len() as Addr,
            has_source: p.has_source,
            module: p.module.clone(),
        });
    }
    let bin = Binary {
        module: program.name.clone(),
        files: program.files.clone(),
        procs,
        code: ctx.code,
        inline_ranges: ctx.inline_ranges,
        entry: program.entry,
    };
    debug_assert!(bin.validate().is_ok(), "lowering produced invalid binary");
    bin
}

struct Lowering<'p> {
    program: &'p Program,
    code: Vec<Instr>,
    inline_ranges: Vec<InlineRange>,
}

impl Lowering<'_> {
    /// Lower one body. `file` is the source file of the code being lowered
    /// (the *callee's* file inside an inline splice).
    fn lower_body(&mut self, body: &[Op], file: usize) {
        for op in body {
            match op {
                Op::Work {
                    line,
                    costs,
                    scalable,
                } => {
                    self.code.push(Instr {
                        kind: InstrKind::Work {
                            costs: *costs,
                            scalable: *scalable,
                        },
                        loc: LineInfo { file, line: *line },
                    });
                }
                Op::Loop { line, trips, body } => {
                    let top = self.code.len() as Addr;
                    self.lower_body(body, file);
                    self.code.push(Instr {
                        kind: InstrKind::Branch {
                            target: top,
                            trips: *trips,
                        },
                        loc: LineInfo { file, line: *line },
                    });
                }
                Op::Call {
                    line,
                    callee,
                    inline: false,
                    max_active,
                } => {
                    self.code.push(Instr {
                        kind: InstrKind::Call {
                            callee: *callee,
                            max_active: *max_active,
                        },
                        loc: LineInfo { file, line: *line },
                    });
                }
                Op::Call {
                    line,
                    callee,
                    inline: true,
                    ..
                } => {
                    let callee_def = &self.program.procs[*callee];
                    let lo = self.code.len() as Addr;
                    // Splice the callee body; its ops carry the callee's
                    // file. Nested inline calls recurse here, producing
                    // properly nested ranges.
                    self.lower_body(&callee_def.body, callee_def.file);
                    let hi = self.code.len() as Addr;
                    if hi > lo {
                        self.inline_ranges.push(InlineRange {
                            lo,
                            hi,
                            callee_name: callee_def.name.clone(),
                            callee_file: callee_def.file,
                            callee_def_line: callee_def.def_line,
                            call_site: LineInfo { file, line: *line },
                        });
                    }
                }
                Op::Barrier { line, id } => {
                    self.code.push(Instr {
                        kind: InstrKind::Barrier { id: *id },
                        loc: LineInfo { file, line: *line },
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Costs;
    use crate::program::ProgramBuilder;

    #[test]
    fn inline_call_leaves_no_call_instruction() {
        let mut b = ProgramBuilder::new("app");
        let f1 = b.file("host.c");
        let f2 = b.file("lib.c");
        let main = b.declare("main", f1, 1);
        let memset = b.declare("fast_memset", f2, 100);
        b.body(memset, vec![Op::work(101, Costs::memory(50, 10))]);
        b.body(main, vec![Op::call_inline(5, memset)]);
        b.entry(main);
        let bin = lower(&b.build());
        let main_range = &bin.procs[main];
        let has_call = (main_range.lo..main_range.hi)
            .any(|a| matches!(bin.instr(a).kind, InstrKind::Call { .. }));
        assert!(!has_call, "inlined call must vanish from the stream");
        // But an inline record exists, pointing back at the call site.
        assert_eq!(bin.inline_ranges.len(), 1);
        let r = &bin.inline_ranges[0];
        assert_eq!(r.callee_name, "fast_memset");
        assert_eq!(r.call_site.line, 5);
        assert_eq!(r.call_site.file, f1);
        // The spliced instruction carries the callee's line info.
        assert_eq!(bin.instr(r.lo).loc.file, f2);
        assert_eq!(bin.instr(r.lo).loc.line, 101);
    }

    #[test]
    fn nested_inlining_produces_nested_ranges() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let inner = b.declare("inner", f, 30);
        let outer = b.declare("outer", f, 20);
        let main = b.declare("main", f, 1);
        b.body(inner, vec![Op::work(31, Costs::cycles(3))]);
        b.body(
            outer,
            vec![Op::work(21, Costs::cycles(2)), Op::call_inline(22, inner)],
        );
        b.body(main, vec![Op::call_inline(2, outer)]);
        b.entry(main);
        let bin = lower(&b.build());
        // Three ranges: inner-in-outer inside outer's own body, plus the
        // outer splice in main and the inner splice nested within it.
        assert_eq!(bin.inline_ranges.len(), 3);
        let main_bounds = &bin.procs[main];
        let in_main: Vec<&InlineRange> = bin
            .inline_ranges
            .iter()
            .filter(|r| r.lo >= main_bounds.lo && r.hi <= main_bounds.hi)
            .collect();
        assert_eq!(in_main.len(), 2);
        let outer_r = in_main.iter().find(|r| r.callee_name == "outer").unwrap();
        let inner_r = in_main.iter().find(|r| r.callee_name == "inner").unwrap();
        assert!(
            outer_r.lo <= inner_r.lo && inner_r.hi <= outer_r.hi,
            "inner range nested in outer"
        );
        // inline_chain_at on the inner instruction reports innermost first.
        let chain = bin.inline_chain_at(inner_r.lo);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].callee_name, "inner");
        assert_eq!(chain[1].callee_name, "outer");
    }

    #[test]
    fn nested_loops_lower_to_nested_branch_ranges() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let main = b.declare("h", f, 7);
        b.body(
            main,
            vec![Op::looped(
                8,
                2,
                vec![Op::looped(9, 4, vec![Op::work(9, Costs::cycles(1))])],
            )],
        );
        b.entry(main);
        let bin = lower(&b.build());
        let branches: Vec<(Addr, Addr)> = bin
            .code
            .iter()
            .enumerate()
            .filter_map(|(a, i)| match i.kind {
                InstrKind::Branch { target, .. } => Some((target, a as Addr)),
                _ => None,
            })
            .collect();
        assert_eq!(branches.len(), 2);
        // The inner loop's range is strictly inside the outer one.
        let (inner, outer) = (branches[0], branches[1]);
        assert!(outer.0 <= inner.0 && inner.1 <= outer.1);
    }

    #[test]
    fn lowering_is_deterministic() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let main = b.declare("main", f, 1);
        b.body(main, vec![Op::work(2, Costs::cycles(7))]);
        b.entry(main);
        let p = b.build();
        assert_eq!(lower(&p), lower(&p));
    }

    #[test]
    fn recursion_guard_survives_lowering() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let g = b.declare("g", f, 2);
        b.body(
            g,
            vec![Op::work(3, Costs::cycles(1)), Op::call_recursive(4, g, 3)],
        );
        b.entry(g);
        let bin = lower(&b.build());
        let call = bin
            .code
            .iter()
            .find_map(|i| match i.kind {
                InstrKind::Call { max_active, .. } => Some(max_active),
                _ => None,
            })
            .unwrap();
        assert_eq!(call, Some(3));
    }
}
