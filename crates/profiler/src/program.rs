//! High-level program models: the "source code" our simulated applications
//! are written in.
//!
//! A [`Program`] is a set of procedures whose bodies are sequences of
//! [`Op`]s — work chunks, loops, calls (possibly inlined, possibly
//! guarded recursion) and synchronization barriers. The lowering pass
//! (`crate::lower`) compiles a program to a linear instruction stream with
//! addresses, a line map and inline records, exactly the artifacts a real
//! binary gives `hpcstruct`.

use crate::counters::Costs;
use serde::{Deserialize, Serialize};

/// Index of a procedure within its program.
pub type ProcIdx = usize;
/// Index of a source file within its program.
pub type FileIdx = usize;

/// One operation in a procedure body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// A chunk of straight-line work at a source line. `scalable` work
    /// shrinks/grows with the per-rank `work_scale` (domain-decomposed
    /// computation); non-scalable work is a serial section that costs the
    /// same on every rank — the classic strong-scaling bottleneck.
    Work {
        /// Source line of the statement.
        line: u32,
        /// Hardware events consumed.
        costs: Costs,
        /// False = serial section (ignores the per-rank work scale).
        scalable: bool,
    },
    /// A counted loop: the body executes `trips` times (`trips >= 1`).
    Loop {
        /// Loop header line.
        line: u32,
        /// Iteration count (>= 1).
        trips: u32,
        /// Loop body.
        body: Vec<Op>,
    },
    /// A procedure call. `inline` splices the callee's body into the
    /// caller at lowering time (the call disappears from the dynamic call
    /// chain, as with `_intel_fast_memset`-style compiler inlining the
    /// paper's Fig. 5 dissects). `max_active` bounds recursion: the call
    /// is skipped when the callee already has that many active frames.
    Call {
        /// Call-site line.
        line: u32,
        /// Target procedure.
        callee: ProcIdx,
        /// Compiler-inlined: the callee's body is spliced at lowering.
        inline: bool,
        /// Recursion bound: skip while this many frames are active.
        max_active: Option<u32>,
    },
    /// A synchronization barrier (SPMD executions only): ranks wait here
    /// for each other; waiting time becomes IDLENESS (Section VI-C).
    /// A synchronization barrier (SPMD executions only): ranks wait here
    /// for each other; waiting time becomes IDLENESS (Section VI-C).
    Barrier {
        /// Source line of the barrier call.
        line: u32,
        /// Barrier identity.
        id: u32,
    },
}

impl Op {
    /// Scalable straight-line work at `line`.
    pub fn work(line: u32, costs: Costs) -> Op {
        Op::Work {
            line,
            costs,
            scalable: true,
        }
    }

    /// A serial section: ignores the per-rank work scale.
    pub fn work_fixed(line: u32, costs: Costs) -> Op {
        Op::Work {
            line,
            costs,
            scalable: false,
        }
    }

    /// A plain call.
    pub fn call(line: u32, callee: ProcIdx) -> Op {
        Op::Call {
            line,
            callee,
            inline: false,
            max_active: None,
        }
    }

    /// A compiler-inlined call (no dynamic frame).
    pub fn call_inline(line: u32, callee: ProcIdx) -> Op {
        Op::Call {
            line,
            callee,
            inline: true,
            max_active: None,
        }
    }

    /// A recursion-bounded call: skipped while `max_active` frames of the
    /// callee are live.
    pub fn call_recursive(line: u32, callee: ProcIdx, max_active: u32) -> Op {
        Op::Call {
            line,
            callee,
            inline: false,
            max_active: Some(max_active),
        }
    }

    /// A counted loop.
    pub fn looped(line: u32, trips: u32, body: Vec<Op>) -> Op {
        Op::Loop { line, trips, body }
    }
}

/// A procedure definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcDef {
    /// Procedure name.
    pub name: String,
    /// Defining source file.
    pub file: FileIdx,
    /// First source line of the definition.
    pub def_line: u32,
    /// The operations the procedure executes, in order.
    pub body: Vec<Op>,
    /// Procedures without source (binary-only runtime routines) render in
    /// plain black in the navigation pane.
    pub has_source: bool,
    /// Load module housing the procedure; `None` = the program's main
    /// module. Library routines (libm, libirc, MPI) live in their own
    /// modules, and the Flat View groups them accordingly.
    pub module: Option<String>,
}

/// A whole program: one load module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Load module name.
    pub name: String,
    /// Source file names, index = file id.
    pub files: Vec<String>,
    /// Procedure definitions, index = procedure id.
    pub procs: Vec<ProcDef>,
    /// Index of the start procedure.
    pub entry: ProcIdx,
}

impl Program {
    /// Structural validation: indices in range, loop trip counts positive,
    /// no *unguarded* call cycles (guarded recursion is fine), and no
    /// inline cycles at all (inlining a cycle would not terminate).
    pub fn validate(&self) -> Result<(), String> {
        if self.entry >= self.procs.len() {
            return Err(format!("entry {} out of range", self.entry));
        }
        for (pi, p) in self.procs.iter().enumerate() {
            if p.file >= self.files.len() {
                return Err(format!("proc {} ({}): bad file index", pi, p.name));
            }
            Self::validate_body(&p.body, pi, self.procs.len())?;
        }
        // Inline cycles: DFS over inline edges only.
        let mut state = vec![0u8; self.procs.len()]; // 0=unvisited 1=active 2=done
        for pi in 0..self.procs.len() {
            self.check_inline_cycles(pi, &mut state)?;
        }
        // Unguarded call cycles.
        let mut state = vec![0u8; self.procs.len()];
        for pi in 0..self.procs.len() {
            self.check_call_cycles(pi, &mut state)?;
        }
        Ok(())
    }

    fn validate_body(body: &[Op], proc: ProcIdx, n_procs: usize) -> Result<(), String> {
        for op in body {
            match op {
                Op::Work { costs, .. } => {
                    if costs.is_zero() {
                        return Err(format!("proc {proc}: zero-cost work op"));
                    }
                }
                Op::Loop { trips, body, .. } => {
                    if *trips == 0 {
                        return Err(format!("proc {proc}: loop with zero trips"));
                    }
                    Self::validate_body(body, proc, n_procs)?;
                }
                Op::Call { callee, .. } => {
                    if *callee >= n_procs {
                        return Err(format!("proc {proc}: callee {callee} out of range"));
                    }
                }
                Op::Barrier { .. } => {}
            }
        }
        Ok(())
    }

    fn check_inline_cycles(&self, pi: ProcIdx, state: &mut [u8]) -> Result<(), String> {
        match state[pi] {
            1 => {
                return Err(format!(
                    "inline cycle through procedure {} ({})",
                    pi, self.procs[pi].name
                ))
            }
            2 => return Ok(()),
            _ => {}
        }
        state[pi] = 1;
        let mut stack = vec![&self.procs[pi].body];
        let mut callees = Vec::new();
        while let Some(body) = stack.pop() {
            for op in body {
                match op {
                    Op::Loop { body, .. } => stack.push(body),
                    Op::Call {
                        callee,
                        inline: true,
                        ..
                    } => callees.push(*callee),
                    _ => {}
                }
            }
        }
        for c in callees {
            self.check_inline_cycles(c, state)?;
        }
        state[pi] = 2;
        Ok(())
    }

    fn check_call_cycles(&self, pi: ProcIdx, state: &mut [u8]) -> Result<(), String> {
        match state[pi] {
            1 => {
                return Err(format!(
                    "unguarded call cycle through procedure {} ({}); \
                     use Op::call_recursive with a depth bound",
                    pi, self.procs[pi].name
                ))
            }
            2 => return Ok(()),
            _ => {}
        }
        state[pi] = 1;
        let mut stack = vec![&self.procs[pi].body];
        let mut callees = Vec::new();
        while let Some(body) = stack.pop() {
            for op in body {
                match op {
                    Op::Loop { body, .. } => stack.push(body),
                    Op::Call {
                        callee,
                        max_active: None,
                        ..
                    } => callees.push(*callee),
                    _ => {}
                }
            }
        }
        for c in callees {
            self.check_call_cycles(c, state)?;
        }
        state[pi] = 2;
        Ok(())
    }
}

/// Fluent builder for programs, used heavily by `callpath-workloads`.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    files: Vec<String>,
    procs: Vec<ProcDef>,
    entry: Option<ProcIdx>,
}

impl ProgramBuilder {
    /// Start building a program named `name` (also its main load module).
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// Intern a source file name.
    pub fn file(&mut self, name: &str) -> FileIdx {
        if let Some(i) = self.files.iter().position(|f| f == name) {
            return i;
        }
        self.files.push(name.to_owned());
        self.files.len() - 1
    }

    /// Declare a procedure with an empty body; fill it later with
    /// [`ProgramBuilder::body`]. Declaration-before-use lets mutually
    /// referencing procedures be wired up.
    pub fn declare(&mut self, name: &str, file: FileIdx, def_line: u32) -> ProcIdx {
        self.procs.push(ProcDef {
            name: name.to_owned(),
            file,
            def_line,
            body: Vec::new(),
            has_source: true,
            module: None,
        });
        self.procs.len() - 1
    }

    /// Declare a procedure housed in a shared library / separate load
    /// module (e.g. `libm.so`). The Flat View groups it under that module.
    pub fn declare_in_module(
        &mut self,
        name: &str,
        module: &str,
        file: FileIdx,
        def_line: u32,
    ) -> ProcIdx {
        let idx = self.declare(name, file, def_line);
        self.procs[idx].module = Some(module.to_owned());
        idx
    }

    /// Declare a binary-only procedure (no source link; rendered in plain
    /// black by the viewer, like the `main` wrapper in Fig. 3).
    pub fn declare_binary_only(&mut self, name: &str) -> ProcIdx {
        let file = self.file("<unknown>");
        let idx = self.declare(name, file, 0);
        self.procs[idx].has_source = false;
        idx
    }

    /// Set a declared procedure's body.
    pub fn body(&mut self, proc: ProcIdx, body: Vec<Op>) -> &mut Self {
        self.procs[proc].body = body;
        self
    }

    /// Move a procedure into a named load module.
    pub fn set_module(&mut self, proc: ProcIdx, module: &str) -> &mut Self {
        self.procs[proc].module = Some(module.to_owned());
        self
    }

    /// Select the start procedure.
    pub fn entry(&mut self, proc: ProcIdx) -> &mut Self {
        self.entry = Some(proc);
        self
    }

    /// Validate and produce the program; panics if invalid (see
    /// [`ProgramBuilder::try_build`] for the fallible form).
    pub fn build(self) -> Program {
        match self.try_build() {
            Ok(p) => p,
            Err(e) => panic!("invalid program: {e}"),
        }
    }

    /// Non-panicking build, for untrusted inputs (e.g. the text DSL).
    pub fn try_build(self) -> Result<Program, String> {
        let program = Program {
            name: self.name,
            files: self.files,
            procs: self.procs,
            entry: self.entry.ok_or("entry procedure not set")?,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Costs;

    fn two_proc_program() -> Program {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("app.c");
        let main = b.declare("main", f, 1);
        let work = b.declare("work", f, 10);
        b.body(main, vec![Op::call(3, work)]);
        b.body(work, vec![Op::work(11, Costs::cycles(100))]);
        b.entry(main);
        b.build()
    }

    #[test]
    fn builder_produces_valid_program() {
        let p = two_proc_program();
        assert_eq!(p.procs.len(), 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn file_interning_in_builder() {
        let mut b = ProgramBuilder::new("x");
        let a = b.file("a.c");
        let a2 = b.file("a.c");
        let c = b.file("c.c");
        assert_eq!(a, a2);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_zero_trip_loop() {
        let mut p = two_proc_program();
        p.procs[1].body = vec![Op::looped(11, 0, vec![Op::work(12, Costs::cycles(1))])];
        assert!(p.validate().unwrap_err().contains("zero trips"));
    }

    #[test]
    fn rejects_zero_cost_work() {
        let mut p = two_proc_program();
        p.procs[1].body = vec![Op::work(11, Costs::ZERO)];
        assert!(p.validate().unwrap_err().contains("zero-cost"));
    }

    #[test]
    fn rejects_out_of_range_callee() {
        let mut p = two_proc_program();
        p.procs[0].body = vec![Op::call(3, 99)];
        assert!(p.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn rejects_unguarded_recursion() {
        let mut p = two_proc_program();
        p.procs[1].body = vec![
            Op::work(11, Costs::cycles(1)),
            Op::call(12, 1), // work calls itself, unguarded
        ];
        assert!(p.validate().unwrap_err().contains("unguarded call cycle"));
    }

    #[test]
    fn accepts_guarded_recursion() {
        let mut p = two_proc_program();
        p.procs[1].body = vec![Op::work(11, Costs::cycles(1)), Op::call_recursive(12, 1, 4)];
        assert!(p.validate().is_ok());
    }

    #[test]
    fn rejects_inline_cycle() {
        let mut p = two_proc_program();
        p.procs[0].body = vec![Op::call_inline(3, 1)];
        p.procs[1].body = vec![Op::call_inline(11, 0)];
        assert!(p.validate().unwrap_err().contains("inline cycle"));
    }

    #[test]
    fn binary_only_procs_have_no_source() {
        let mut b = ProgramBuilder::new("x");
        let rt = b.declare_binary_only("__libc_start");
        let f = b.file("m.c");
        let main = b.declare("main", f, 1);
        b.body(main, vec![Op::work(2, Costs::cycles(1))]);
        b.body(rt, vec![Op::call(0, main)]);
        b.entry(rt);
        let p = b.build();
        assert!(!p.procs[rt].has_source);
        assert!(p.procs[main].has_source);
    }

    #[test]
    #[should_panic(expected = "invalid program")]
    fn build_panics_on_invalid() {
        let mut b = ProgramBuilder::new("x");
        let f = b.file("a.c");
        let main = b.declare("main", f, 1);
        b.body(main, vec![Op::call(2, main)]); // unguarded self-recursion
        b.entry(main);
        let _ = b.build();
    }
}
