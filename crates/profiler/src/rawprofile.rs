//! The raw call path profile `hpcrun` produces: a trie over call-site
//! addresses with per-leaf sample counts, one count per hardware counter.
//!
//! Nothing here knows about loops, files or procedure names — exactly like
//! the on-disk artifact of a real sampling profiler, which records return
//! addresses and instruction pointers. All source-level meaning is
//! recovered later by `callpath-structure` + `callpath-prof`.

use crate::binary::Addr;
use crate::counters::Counter;
use crate::program::ProcIdx;
use serde::{Deserialize, Serialize};

const NONE: u32 = u32::MAX;

/// Sentinel "call address" for the entry frame, which nothing called.
pub const NO_CALL: Addr = Addr::MAX;

/// Sample counts recorded at one instruction within one calling context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafSamples {
    /// Instruction address the samples landed on.
    pub addr: Addr,
    /// Per-counter sample counts (fractional after post-processing such as
    /// idleness injection).
    pub counts: [f64; Counter::COUNT],
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RawNode {
    /// Address of the call instruction that created this frame.
    call_addr: Addr,
    /// The procedure entered (resolvable from the call target; carried
    /// directly for convenience).
    callee: ProcIdx,
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    leaves: Vec<LeafSamples>,
}

/// Raw profile trie. Node 0 is a synthetic root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawProfile {
    nodes: Vec<RawNode>,
}

/// Handle to a trie node.
pub type RawNodeId = u32;

impl Default for RawProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl RawProfile {
    /// An empty profile (just the synthetic root).
    pub fn new() -> Self {
        RawProfile {
            nodes: vec![RawNode {
                call_addr: NO_CALL,
                callee: usize::MAX,
                parent: NONE,
                first_child: NONE,
                last_child: NONE,
                next_sibling: NONE,
                leaves: Vec::new(),
            }],
        }
    }

    /// The synthetic root node.
    pub fn root(&self) -> RawNodeId {
        0
    }

    /// Number of trie nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Find or create the child frame of `parent` entered through the call
    /// at `call_addr` into `callee`.
    pub fn frame(&mut self, parent: RawNodeId, call_addr: Addr, callee: ProcIdx) -> RawNodeId {
        let mut cur = self.nodes[parent as usize].first_child;
        while cur != NONE {
            let n = &self.nodes[cur as usize];
            if n.call_addr == call_addr && n.callee == callee {
                return cur;
            }
            cur = n.next_sibling;
        }
        let id = u32::try_from(self.nodes.len()).expect("raw profile overflow");
        self.nodes.push(RawNode {
            call_addr,
            callee,
            parent,
            first_child: NONE,
            last_child: NONE,
            next_sibling: NONE,
            leaves: Vec::new(),
        });
        let p = &mut self.nodes[parent as usize];
        if p.first_child == NONE {
            p.first_child = id;
        } else {
            let last = p.last_child;
            self.nodes[last as usize].next_sibling = id;
        }
        self.nodes[parent as usize].last_child = id;
        id
    }

    /// Record `count` samples of `counter` at instruction `addr` within
    /// frame `node`.
    pub fn add_samples(&mut self, node: RawNodeId, addr: Addr, counter: Counter, count: f64) {
        let leaves = &mut self.nodes[node as usize].leaves;
        if let Some(l) = leaves.iter_mut().find(|l| l.addr == addr) {
            l.counts[counter as usize] += count;
        } else {
            let mut counts = [0.0; Counter::COUNT];
            counts[counter as usize] = count;
            leaves.push(LeafSamples { addr, counts });
        }
    }

    /// Insert a whole call path (call addresses outermost-first, paired
    /// with their callees) and record samples at its leaf instruction.
    pub fn add_path(
        &mut self,
        path: &[(Addr, ProcIdx)],
        leaf_addr: Addr,
        counter: Counter,
        count: f64,
    ) -> RawNodeId {
        let mut cur = self.root();
        for &(call_addr, callee) in path {
            cur = self.frame(cur, call_addr, callee);
        }
        self.add_samples(cur, leaf_addr, counter, count);
        cur
    }

    /// Child frames of `node`, in insertion order.
    pub fn children(&self, node: RawNodeId) -> Vec<RawNodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[node as usize].first_child;
        while cur != NONE {
            out.push(cur);
            cur = self.nodes[cur as usize].next_sibling;
        }
        out
    }

    /// Call-site address that created frame `node`.
    pub fn call_addr(&self, node: RawNodeId) -> Addr {
        self.nodes[node as usize].call_addr
    }

    /// The procedure frame `node` entered.
    pub fn callee(&self, node: RawNodeId) -> ProcIdx {
        self.nodes[node as usize].callee
    }

    /// Samples recorded at instructions within frame `node`.
    pub fn leaves(&self, node: RawNodeId) -> &[LeafSamples] {
        &self.nodes[node as usize].leaves
    }

    /// Total sample count for a counter over the whole profile.
    pub fn total_samples(&self, counter: Counter) -> f64 {
        self.nodes
            .iter()
            .flat_map(|n| n.leaves.iter())
            .map(|l| l.counts[counter as usize])
            .sum()
    }

    /// Merge another profile into this one (used to fold per-rank or
    /// per-thread profiles together).
    pub fn merge(&mut self, other: &RawProfile) {
        self.merge_subtree(self.root(), other, other.root());
    }

    fn merge_subtree(&mut self, into: RawNodeId, other: &RawProfile, from: RawNodeId) {
        // Copy leaves.
        let leaves: Vec<LeafSamples> = other.leaves(from).to_vec();
        for l in leaves {
            for c in Counter::ALL {
                if l.counts[c as usize] != 0.0 {
                    self.add_samples(into, l.addr, c, l.counts[c as usize]);
                }
            }
        }
        for child in other.children(from) {
            let mapped = self.frame(into, other.call_addr(child), other.callee(child));
            self.merge_subtree(mapped, other, child);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_deduplicates() {
        let mut p = RawProfile::new();
        let a = p.frame(p.root(), 10, 1);
        let b = p.frame(p.root(), 10, 1);
        assert_eq!(a, b);
        let c = p.frame(p.root(), 11, 1);
        assert_ne!(a, c);
        assert_eq!(p.node_count(), 3);
    }

    #[test]
    fn samples_accumulate_per_leaf() {
        let mut p = RawProfile::new();
        let f = p.frame(p.root(), NO_CALL, 0);
        p.add_samples(f, 5, Counter::Cycles, 2.0);
        p.add_samples(f, 5, Counter::Cycles, 3.0);
        p.add_samples(f, 6, Counter::Cycles, 1.0);
        p.add_samples(f, 5, Counter::FpOps, 4.0);
        assert_eq!(p.leaves(f).len(), 2);
        assert_eq!(p.total_samples(Counter::Cycles), 6.0);
        assert_eq!(p.total_samples(Counter::FpOps), 4.0);
    }

    #[test]
    fn add_path_builds_trie() {
        let mut p = RawProfile::new();
        p.add_path(&[(NO_CALL, 0), (3, 1), (7, 2)], 9, Counter::Cycles, 1.0);
        p.add_path(&[(NO_CALL, 0), (3, 1), (7, 2)], 9, Counter::Cycles, 1.0);
        p.add_path(&[(NO_CALL, 0), (4, 2)], 8, Counter::Cycles, 1.0);
        // root -> main(0) -> {callee1 -> callee2, callee2}
        assert_eq!(p.node_count(), 1 + 1 + 2 + 1);
        assert_eq!(p.total_samples(Counter::Cycles), 3.0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = RawProfile::new();
        a.add_path(&[(NO_CALL, 0), (3, 1)], 5, Counter::Cycles, 2.0);
        let mut b = RawProfile::new();
        b.add_path(&[(NO_CALL, 0), (3, 1)], 5, Counter::Cycles, 3.0);
        b.add_path(&[(NO_CALL, 0), (9, 2)], 11, Counter::L1DcMisses, 1.0);
        a.merge(&b);
        assert_eq!(a.total_samples(Counter::Cycles), 5.0);
        assert_eq!(a.total_samples(Counter::L1DcMisses), 1.0);
        // Shared path nodes were not duplicated.
        assert_eq!(a.node_count(), 1 + 1 + 2);
    }

    #[test]
    fn merge_is_commutative_in_totals() {
        let mut a = RawProfile::new();
        a.add_path(&[(NO_CALL, 0)], 1, Counter::Cycles, 1.0);
        let mut b = RawProfile::new();
        b.add_path(&[(NO_CALL, 0), (2, 1)], 3, Counter::Cycles, 2.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            ab.total_samples(Counter::Cycles),
            ba.total_samples(Counter::Cycles)
        );
        assert_eq!(ab.node_count(), ba.node_count());
    }
}
