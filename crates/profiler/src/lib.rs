#![warn(missing_docs)]
//! # callpath-profiler
//!
//! The measurement substrate: a deterministic program-execution simulator
//! with asynchronous statistical sampling — this repository's stand-in for
//! HPCToolkit's `hpcrun` running on real hardware.
//!
//! The pipeline mirrors the real toolchain:
//!
//! 1. describe an application as a [`program::Program`] (procedures, loops,
//!    calls, inlining, guarded recursion, barriers);
//! 2. [`lower::lower`] compiles it to a [`binary::Binary`] — a linear
//!    instruction stream with addresses, a line map and DWARF-style inline
//!    records (loops exist only as backward branches, exactly like a real
//!    binary);
//! 3. [`exec::execute`] runs the binary on a simulated CPU with virtual
//!    hardware counters ([`counters::Counter`]), taking samples on counter
//!    overflow into a [`rawprofile::RawProfile`] — a trie of call-site
//!    addresses with per-instruction sample counts.
//!
//! Everything downstream (`callpath-structure`, `callpath-prof`) consumes
//! only the binary image and the raw profile, never the high-level program,
//! so the presentation layer is exercised end-to-end the way the paper's
//! tools are.

pub mod binary;
pub mod counters;
pub mod dsl;
pub mod exec;
pub mod listing;
pub mod lower;
pub mod program;
pub mod rawprofile;

pub use binary::{Addr, BinProc, Binary, InlineRange, Instr, InstrKind, LineInfo};
pub use counters::{metric_descs, Costs, Counter};
pub use dsl::{parse as parse_program, DslError};
pub use exec::{execute, BarrierArrival, ExecConfig, ExecResult};
pub use listing::generate as generate_listings;
pub use lower::lower;
pub use program::{Op, ProcDef, ProcIdx, Program, ProgramBuilder};
pub use rawprofile::{LeafSamples, RawNodeId, RawProfile, NO_CALL};
