//! The simulated CPU: executes a lowered [`Binary`] with a virtual clock
//! and hardware event counters, taking asynchronous statistical samples —
//! the `hpcrun` substitute.
//!
//! Sampling works the way hardware counter overflow interrupts do: each
//! sampled counter has a period; whenever the accumulated event count
//! crosses a period boundary, the engine records one sample attributing
//! the *current* call path (the stack of call-site addresses) and the
//! current instruction pointer. Work chunks are atomic, so a chunk that
//! crosses several boundaries yields several samples at its address —
//! matching how an interrupt lands on the instruction that overflowed the
//! counter.
//!
//! Each sample also charges a configurable tool overhead
//! (`sample_cost_cycles`), which the E8 bench uses to reproduce the
//! paper's "only a few percent overhead" claim for asynchronous sampling.

use crate::binary::{Addr, Binary, InstrKind};
use crate::counters::{Costs, Counter};
use crate::program::ProcIdx;
use crate::rawprofile::{RawProfile, NO_CALL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Sampling period per counter; 0 disables sampling of that counter.
    pub periods: [u64; Counter::COUNT],
    /// Multiplier applied to every Work cost (per-rank load imbalance).
    pub work_scale: f64,
    /// Randomize each counter's initial phase within one period. Keeps
    /// periodic loops from aliasing with the sampling clock. `None` means
    /// phase = period exactly (fully deterministic placement).
    pub jitter_seed: Option<u64>,
    /// Tool overhead charged per recorded sample (cycles).
    pub sample_cost_cycles: u64,
    /// Safety bound on executed instructions.
    pub max_steps: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            periods: {
                let mut p = [0; Counter::COUNT];
                p[Counter::Cycles as usize] = 1009; // prime periods resist aliasing
                p[Counter::FpOps as usize] = 1013;
                p[Counter::L1DcMisses as usize] = 211;
                p
            },
            work_scale: 1.0,
            jitter_seed: Some(0x5EED),
            sample_cost_cycles: 3,
            max_steps: 500_000_000,
        }
    }
}

impl ExecConfig {
    /// Sample only `counter` with the given period.
    pub fn single(counter: Counter, period: u64) -> Self {
        let mut c = ExecConfig {
            periods: [0; Counter::COUNT],
            ..Default::default()
        };
        c.periods[counter as usize] = period;
        c
    }
}

/// A rank's arrival at a synchronization barrier: virtual time plus the
/// full calling context, so idleness can later be attributed in context.
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierArrival {
    /// Barrier identity.
    pub id: u32,
    /// Arrival order within this rank's execution (barriers execute in
    /// program order; the pairing across ranks is by (id, occurrence)).
    pub occurrence: u32,
    /// The rank's own-work cycle count at arrival.
    pub time_cycles: u64,
    /// Call path: (call address, callee) outermost-first.
    pub path: Vec<(Addr, ProcIdx)>,
    /// Address of the barrier instruction.
    pub addr: Addr,
}

/// Result of one simulated execution.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// The sampled call path profile.
    pub profile: RawProfile,
    /// Ground-truth event totals (what a perfect profiler would report).
    pub totals: Costs,
    /// Barrier arrivals, in program order.
    pub barrier_arrivals: Vec<BarrierArrival>,
    /// Number of samples recorded.
    pub samples_taken: u64,
    /// Total tool overhead in cycles (samples × per-sample cost).
    pub overhead_cycles: u64,
    /// Dynamically executed instruction count (simulator steps).
    pub steps: u64,
    /// Exact call-arc counts `(caller, callee) -> calls`, the equivalent of
    /// gprof's `mcount` instrumentation (used by `callpath-baseline`).
    pub call_arcs: std::collections::HashMap<(ProcIdx, ProcIdx), u64>,
}

impl ExecResult {
    /// Measurement overhead as a fraction of application cycles.
    pub fn overhead_fraction(&self) -> f64 {
        let app = self.totals[Counter::Cycles] as f64;
        if app == 0.0 {
            0.0
        } else {
            self.overhead_cycles as f64 / app
        }
    }
}

struct Frame {
    /// Address of the call instruction (NO_CALL for the entry frame).
    call_addr: Addr,
    callee: ProcIdx,
    ret: Option<Addr>,
    /// Active counted loops in this frame: (branch address, remaining
    /// repeats).
    loops: Vec<(Addr, u32)>,
}

/// Execute `binary` under `config`.
pub fn execute(binary: &Binary, config: &ExecConfig) -> Result<ExecResult, String> {
    let mut rng = config.jitter_seed.map(StdRng::seed_from_u64);
    let mut acc = Costs::ZERO;
    let mut next_threshold = [u64::MAX; Counter::COUNT];
    for c in Counter::ALL {
        let period = config.periods[c as usize];
        if period > 0 {
            let phase = match &mut rng {
                Some(r) => r.gen_range(1..=period),
                None => period,
            };
            next_threshold[c as usize] = phase;
        }
    }

    let mut profile = RawProfile::new();
    let mut barrier_arrivals: Vec<BarrierArrival> = Vec::new();
    let mut barrier_occurrence: std::collections::HashMap<u32, u32> =
        std::collections::HashMap::new();
    let mut samples_taken: u64 = 0;
    let mut steps: u64 = 0;
    let mut call_arcs: std::collections::HashMap<(ProcIdx, ProcIdx), u64> =
        std::collections::HashMap::new();

    let mut active = vec![0u32; binary.procs.len()];
    let mut stack: Vec<Frame> = vec![Frame {
        call_addr: NO_CALL,
        callee: binary.entry,
        ret: None,
        loops: Vec::new(),
    }];
    active[binary.entry] = 1;
    // Cache of the raw-profile node for the current stack, rebuilt only on
    // push/pop: keeps per-sample cost O(1).
    let mut trie_path: Vec<crate::rawprofile::RawNodeId> = Vec::new();
    let first = profile.frame(profile.root(), NO_CALL, binary.entry);
    trie_path.push(first);

    let mut pc: Addr = binary.entry_addr(binary.entry);

    while !stack.is_empty() {
        steps += 1;
        if steps > config.max_steps {
            return Err(format!("execution exceeded {} steps", config.max_steps));
        }
        let instr = binary.instr(pc);
        match &instr.kind {
            InstrKind::Work { costs, scalable } => {
                let scaled = if *scalable {
                    costs.scaled(config.work_scale)
                } else {
                    *costs
                };
                for c in Counter::ALL {
                    let events = scaled[c];
                    if events == 0 {
                        continue;
                    }
                    acc[c] += events;
                    let period = config.periods[c as usize];
                    if period == 0 {
                        continue;
                    }
                    let node = *trie_path.last().unwrap();
                    while acc[c] >= next_threshold[c as usize] {
                        profile.add_samples(node, pc, c, 1.0);
                        samples_taken += 1;
                        next_threshold[c as usize] =
                            next_threshold[c as usize].saturating_add(period);
                    }
                }
                pc += 1;
            }
            InstrKind::Call { callee, max_active } => {
                let blocked = matches!(max_active, Some(limit) if active[*callee] >= *limit);
                if blocked {
                    pc += 1;
                } else {
                    let caller = stack.last().expect("call outside any frame").callee;
                    *call_arcs.entry((caller, *callee)).or_insert(0) += 1;
                    active[*callee] += 1;
                    stack.push(Frame {
                        call_addr: pc,
                        callee: *callee,
                        ret: Some(pc + 1),
                        loops: Vec::new(),
                    });
                    let parent = *trie_path.last().unwrap();
                    trie_path.push(profile.frame(parent, pc, *callee));
                    pc = binary.entry_addr(*callee);
                }
            }
            InstrKind::Branch { target, trips } => {
                let frame = stack.last_mut().expect("branch outside any frame");
                match frame.loops.last_mut() {
                    Some((addr, remaining)) if *addr == pc => {
                        if *remaining > 0 {
                            *remaining -= 1;
                            pc = *target;
                        } else {
                            frame.loops.pop();
                            pc += 1;
                        }
                    }
                    _ => {
                        // First arrival: the body has run once already.
                        if *trips > 1 {
                            frame.loops.push((pc, trips - 2));
                            pc = *target;
                        } else {
                            pc += 1;
                        }
                    }
                }
            }
            InstrKind::Barrier { id } => {
                let occurrence = barrier_occurrence.entry(*id).or_insert(0);
                let path: Vec<(Addr, ProcIdx)> =
                    stack.iter().map(|f| (f.call_addr, f.callee)).collect();
                barrier_arrivals.push(BarrierArrival {
                    id: *id,
                    occurrence: *occurrence,
                    time_cycles: acc[Counter::Cycles],
                    path,
                    addr: pc,
                });
                *occurrence += 1;
                pc += 1;
            }
            InstrKind::Ret => {
                let frame = stack.pop().expect("ret outside any frame");
                active[frame.callee] -= 1;
                trie_path.pop();
                match frame.ret {
                    Some(ret) => pc = ret,
                    None => break, // entry frame returned: halt
                }
            }
        }
    }

    Ok(ExecResult {
        profile,
        totals: acc,
        barrier_arrivals,
        samples_taken,
        overhead_cycles: samples_taken * config.sample_cost_cycles,
        steps,
        call_arcs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::program::{Op, ProgramBuilder};

    fn simple_binary(work_cycles: u64) -> Binary {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let main = b.declare("main", f, 1);
        let work = b.declare("work", f, 10);
        b.body(main, vec![Op::call(2, work)]);
        b.body(work, vec![Op::work(11, Costs::cycles(work_cycles))]);
        b.entry(main);
        lower(&b.build())
    }

    #[test]
    fn totals_are_exact_ground_truth() {
        let bin = simple_binary(12_345);
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        assert_eq!(res.totals[Counter::Cycles], 12_345);
        assert_eq!(res.totals[Counter::Instructions], 12_345);
    }

    #[test]
    fn sample_count_matches_period() {
        let bin = simple_binary(100_000);
        let cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 1000)
        };
        let res = execute(&bin, &cfg).unwrap();
        assert_eq!(res.samples_taken, 100, "100k cycles / 1k period");
        assert_eq!(res.profile.total_samples(Counter::Cycles), 100.0);
    }

    #[test]
    fn jitter_changes_phase_not_rate() {
        let bin = simple_binary(1_000_000);
        let base = ExecConfig::single(Counter::Cycles, 997);
        let a = execute(
            &bin,
            &ExecConfig {
                jitter_seed: Some(1),
                ..base.clone()
            },
        )
        .unwrap();
        let b = execute(
            &bin,
            &ExecConfig {
                jitter_seed: Some(2),
                ..base
            },
        )
        .unwrap();
        let expect = 1_000_000 / 997;
        assert!((a.samples_taken as i64 - expect as i64).abs() <= 1);
        assert!((b.samples_taken as i64 - expect as i64).abs() <= 1);
    }

    #[test]
    fn loop_executes_exactly_trips_times() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let main = b.declare("main", f, 1);
        b.body(
            main,
            vec![Op::looped(2, 7, vec![Op::work(3, Costs::cycles(10))])],
        );
        b.entry(main);
        let bin = lower(&b.build());
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        assert_eq!(res.totals[Counter::Cycles], 70);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let main = b.declare("main", f, 1);
        b.body(
            main,
            vec![Op::looped(
                2,
                3,
                vec![Op::looped(3, 5, vec![Op::work(4, Costs::cycles(2))])],
            )],
        );
        b.entry(main);
        let bin = lower(&b.build());
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        assert_eq!(res.totals[Counter::Cycles], 3 * 5 * 2);
    }

    #[test]
    fn single_trip_loop_runs_once() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let main = b.declare("main", f, 1);
        b.body(
            main,
            vec![Op::looped(2, 1, vec![Op::work(3, Costs::cycles(5))])],
        );
        b.entry(main);
        let bin = lower(&b.build());
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        assert_eq!(res.totals[Counter::Cycles], 5);
    }

    #[test]
    fn guarded_recursion_terminates_with_bounded_depth() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let g = b.declare("g", f, 2);
        b.body(
            g,
            vec![Op::work(3, Costs::cycles(10)), Op::call_recursive(4, g, 3)],
        );
        b.entry(g);
        let bin = lower(&b.build());
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        assert_eq!(res.totals[Counter::Cycles], 30, "three activations");
    }

    #[test]
    fn samples_attribute_to_the_correct_context() {
        let bin = simple_binary(50_000);
        let cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 500)
        };
        let res = execute(&bin, &cfg).unwrap();
        // All samples must sit in the frame main -> work at the work
        // instruction.
        let root = res.profile.root();
        let mains = res.profile.children(root);
        assert_eq!(mains.len(), 1);
        let works = res.profile.children(mains[0]);
        assert_eq!(works.len(), 1);
        let leaves = res.profile.leaves(works[0]);
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].counts[Counter::Cycles as usize], 100.0);
        // No samples attributed to main itself.
        assert!(res.profile.leaves(mains[0]).is_empty());
    }

    #[test]
    fn work_scale_inflates_cost() {
        let bin = simple_binary(1000);
        let res = execute(
            &bin,
            &ExecConfig {
                work_scale: 2.5,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(res.totals[Counter::Cycles], 2500);
    }

    #[test]
    fn barriers_record_context_and_time() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let main = b.declare("main", f, 1);
        let step = b.declare("step", f, 10);
        b.body(main, vec![Op::looped(2, 3, vec![Op::call(3, step)])]);
        b.body(
            step,
            vec![
                Op::work(11, Costs::cycles(100)),
                Op::Barrier { line: 12, id: 0 },
            ],
        );
        b.entry(main);
        let bin = lower(&b.build());
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        assert_eq!(res.barrier_arrivals.len(), 3);
        assert_eq!(res.barrier_arrivals[0].time_cycles, 100);
        assert_eq!(res.barrier_arrivals[2].time_cycles, 300);
        assert_eq!(res.barrier_arrivals[0].occurrence, 0);
        assert_eq!(res.barrier_arrivals[2].occurrence, 2);
        // Context is main -> step.
        assert_eq!(res.barrier_arrivals[0].path.len(), 2);
    }

    #[test]
    fn overhead_scales_inversely_with_period() {
        let bin = simple_binary(1_000_000);
        let coarse = execute(
            &bin,
            &ExecConfig {
                jitter_seed: None,
                sample_cost_cycles: 5,
                ..ExecConfig::single(Counter::Cycles, 10_000)
            },
        )
        .unwrap();
        let fine = execute(
            &bin,
            &ExecConfig {
                jitter_seed: None,
                sample_cost_cycles: 5,
                ..ExecConfig::single(Counter::Cycles, 100)
            },
        )
        .unwrap();
        assert!(fine.overhead_cycles > 50 * coarse.overhead_cycles);
        assert!(
            coarse.overhead_fraction() < 0.01,
            "coarse sampling is cheap"
        );
    }

    #[test]
    fn runaway_execution_is_bounded() {
        let bin = simple_binary(10);
        let res = execute(
            &bin,
            &ExecConfig {
                max_steps: 2,
                ..ExecConfig::default()
            },
        );
        assert!(res.is_err());
    }

    #[test]
    fn inlined_callee_cost_lands_in_host_frame() {
        let mut b = ProgramBuilder::new("app");
        let f1 = b.file("host.c");
        let f2 = b.file("lib.c");
        let main = b.declare("main", f1, 1);
        let memset = b.declare("fast_memset", f2, 100);
        b.body(memset, vec![Op::work(101, Costs::cycles(10_000))]);
        b.body(main, vec![Op::call_inline(5, memset)]);
        b.entry(main);
        let bin = lower(&b.build());
        let cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 100)
        };
        let res = execute(&bin, &cfg).unwrap();
        // Only one frame (main) in the profile: the inline call pushed
        // nothing.
        let mains = res.profile.children(res.profile.root());
        assert_eq!(mains.len(), 1);
        assert!(res.profile.children(mains[0]).is_empty());
        assert_eq!(res.profile.total_samples(Counter::Cycles), 100.0);
    }
}
