//! A small text language for program models (`.cps` — "call path
//! scenario"), so workloads can be written as files and fed to
//! `callpath-record --program` without recompiling.
//!
//! ```text
//! # comments run to end of line
//! program myapp
//!
//! proc main @ app.c:1
//!   work @ 2 cycles=1000
//!   loop @ 3 trips=8
//!     call work_fn @ 4
//!   end
//! end
//!
//! proc work_fn @ app.c:10
//!   compute @ 11 flops=100000 eff=0.5        # cycles from flops/(peak*eff)
//!   memory  @ 12 cycles=2000 misses=64
//! end
//!
//! proc fast_memset in libirc.so nosource
//!   memory @ 0 cycles=400 misses=96
//! end
//!
//! entry main
//! ```
//!
//! Statements inside a `proc`:
//!
//! | form | meaning |
//! |---|---|
//! | `work @ L cycles=N [instr=N] [flops=N] [l1=N] [fixed]` | raw counter costs; `fixed` = serial section (ignores per-rank scale) |
//! | `compute @ L flops=N eff=F [peak=F]` | FP work at a relative efficiency (default peak 4 flops/cycle) |
//! | `memory @ L cycles=N misses=N` | memory-bound streaming work |
//! | `loop @ L trips=N ... end` | counted loop |
//! | `call NAME @ L [inline] [recurse=N]` | call; `inline` splices, `recurse` bounds active frames |
//! | `barrier @ L id=N` | SPMD synchronization point |
//!
//! Procedures may be referenced before their definition; `entry` selects
//! the start procedure. Every error carries its source line number.

use crate::counters::{Costs, Counter};
use crate::program::{Op, Program, ProgramBuilder};
use std::collections::HashMap;
use std::fmt;

/// Parse error with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line in the `.cps` source.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

fn err(line: usize, message: impl Into<String>) -> DslError {
    DslError {
        line,
        message: message.into(),
    }
}

/// One meaningful source line, pre-tokenized.
struct Line {
    no: usize,
    tokens: Vec<String>,
}

fn tokenize(src: &str) -> Vec<Line> {
    src.lines()
        .enumerate()
        .filter_map(|(i, raw)| {
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                return None;
            }
            Some(Line {
                no: i + 1,
                tokens: text.split_whitespace().map(str::to_owned).collect(),
            })
        })
        .collect()
}

/// `key=value` options after the positional part of a statement.
struct Opts {
    line: usize,
    map: HashMap<String, String>,
    flags: Vec<String>,
}

impl Opts {
    fn parse(line: usize, tokens: &[String]) -> Result<Opts, DslError> {
        let mut map = HashMap::new();
        let mut flags = Vec::new();
        for t in tokens {
            match t.split_once('=') {
                Some((k, v)) => {
                    if map.insert(k.to_owned(), v.to_owned()).is_some() {
                        return Err(err(line, format!("duplicate option '{k}'")));
                    }
                }
                None => flags.push(t.clone()),
            }
        }
        Ok(Opts { line, map, flags })
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, DslError> {
        match self.map.get(key) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| err(self.line, format!("bad number for '{key}': '{v}'"))),
            None => Ok(None),
        }
    }

    fn req_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, DslError> {
        self.num(key)?
            .ok_or_else(|| err(self.line, format!("missing required option '{key}='")))
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn check_known(&self, known_opts: &[&str], known_flags: &[&str]) -> Result<(), DslError> {
        for k in self.map.keys() {
            if !known_opts.contains(&k.as_str()) {
                return Err(err(self.line, format!("unknown option '{k}='")));
            }
        }
        for f in &self.flags {
            if !known_flags.contains(&f.as_str()) {
                return Err(err(self.line, format!("unknown flag '{f}'")));
            }
        }
        Ok(())
    }
}

/// Split `file:line`.
fn parse_loc(line_no: usize, text: &str) -> Result<(String, u32), DslError> {
    let (file, l) = text
        .rsplit_once(':')
        .ok_or_else(|| err(line_no, format!("expected file:line, got '{text}'")))?;
    let l = l
        .parse()
        .map_err(|_| err(line_no, format!("bad line number in '{text}'")))?;
    Ok((file.to_owned(), l))
}

/// Expect `@` then a line number as the next two tokens; returns (line
/// number value, rest).
fn parse_at(line_no: usize, tokens: &[String]) -> Result<(u32, &[String]), DslError> {
    if tokens.first().map(String::as_str) != Some("@") {
        return Err(err(line_no, "expected '@ <line>'"));
    }
    let l = tokens
        .get(1)
        .ok_or_else(|| err(line_no, "expected a line number after '@'"))?
        .parse()
        .map_err(|_| err(line_no, "bad line number after '@'"))?;
    Ok((l, &tokens[2..]))
}

struct ProcHeader {
    name: String,
    module: Option<String>,
    file: Option<String>,
    def_line: u32,
    nosource: bool,
    body_start: usize, // index into lines
    body_end: usize,   // exclusive, of the matching `end`
}

/// Parse a `.cps` source into a [`Program`].
pub fn parse(src: &str) -> Result<Program, DslError> {
    let lines = tokenize(src);
    if lines.is_empty() {
        return Err(err(1, "empty program"));
    }

    // Header: `program <name>`.
    let mut i = 0;
    if lines[0].tokens[0] != "program" || lines[0].tokens.len() != 2 {
        return Err(err(lines[0].no, "expected 'program <name>' first"));
    }
    let module_name = lines[0].tokens[1].clone();
    i += 1;

    // Pass 1: find proc headers and their body spans; find entry.
    let mut headers: Vec<ProcHeader> = Vec::new();
    let mut entry: Option<(usize, String)> = None;
    while i < lines.len() {
        let line = &lines[i];
        match line.tokens[0].as_str() {
            "proc" => {
                let mut toks = &line.tokens[1..];
                let name = toks
                    .first()
                    .ok_or_else(|| err(line.no, "proc needs a name"))?
                    .clone();
                toks = &toks[1..];
                let mut module = None;
                let mut file = None;
                let mut def_line = 0;
                let mut nosource = false;
                while let Some(t) = toks.first() {
                    match t.as_str() {
                        "in" => {
                            module = Some(
                                toks.get(1)
                                    .ok_or_else(|| err(line.no, "'in' needs a module name"))?
                                    .clone(),
                            );
                            toks = &toks[2..];
                        }
                        "@" => {
                            let loc = toks
                                .get(1)
                                .ok_or_else(|| err(line.no, "'@' needs file:line"))?;
                            let (f, l) = parse_loc(line.no, loc)?;
                            file = Some(f);
                            def_line = l;
                            toks = &toks[2..];
                        }
                        "nosource" => {
                            nosource = true;
                            toks = &toks[1..];
                        }
                        other => {
                            return Err(err(
                                line.no,
                                format!("unexpected '{other}' in proc header"),
                            ))
                        }
                    }
                }
                if file.is_none() && !nosource {
                    return Err(err(
                        line.no,
                        format!("proc {name} needs '@ file:line' or 'nosource'"),
                    ));
                }
                // Find the matching `end`, accounting for nested loops.
                let body_start = i + 1;
                let mut depth = 0usize;
                let mut j = body_start;
                let body_end = loop {
                    let l = lines
                        .get(j)
                        .ok_or_else(|| err(line.no, format!("proc {name}: missing 'end'")))?;
                    match l.tokens[0].as_str() {
                        "loop" => depth += 1,
                        "end" if depth == 0 => break j,
                        "end" => depth -= 1,
                        "proc" | "entry" | "program" => {
                            return Err(err(l.no, format!("proc {name}: missing 'end'")))
                        }
                        _ => {}
                    }
                    j += 1;
                };
                headers.push(ProcHeader {
                    name,
                    module,
                    file,
                    def_line,
                    nosource,
                    body_start,
                    body_end,
                });
                i = body_end + 1;
            }
            "entry" => {
                if line.tokens.len() != 2 {
                    return Err(err(line.no, "expected 'entry <proc>'"));
                }
                if entry.is_some() {
                    return Err(err(line.no, "duplicate 'entry'"));
                }
                entry = Some((line.no, line.tokens[1].clone()));
                i += 1;
            }
            other => {
                return Err(err(
                    line.no,
                    format!("expected 'proc' or 'entry', got '{other}'"),
                ))
            }
        }
    }

    // Declare all procs (forward references resolved).
    let mut b = ProgramBuilder::new(&module_name);
    let mut proc_ids: HashMap<String, usize> = HashMap::new();
    for h in &headers {
        if proc_ids.contains_key(&h.name) {
            return Err(err(
                lines[h.body_start - 1].no,
                format!("duplicate proc '{}'", h.name),
            ));
        }
        let idx = if h.nosource {
            b.declare_binary_only(&h.name)
        } else {
            let file = b.file(h.file.as_deref().unwrap());
            b.declare(&h.name, file, h.def_line)
        };
        proc_ids.insert(h.name.clone(), idx);
    }
    // Module overrides (applies to sourced and nosource procs alike).
    for h in &headers {
        if let Some(m) = &h.module {
            b.set_module(proc_ids[&h.name], m);
        }
    }

    // Pass 2: bodies.
    for h in &headers {
        let (body, consumed) = parse_body(&lines, h.body_start, h.body_end, &proc_ids)?;
        debug_assert_eq!(consumed, h.body_end);
        b.body(proc_ids[&h.name], body);
    }

    let (entry_line, entry_name) =
        entry.ok_or_else(|| err(lines.last().unwrap().no, "missing 'entry <proc>'"))?;
    let entry_idx = *proc_ids
        .get(&entry_name)
        .ok_or_else(|| err(entry_line, format!("entry proc '{entry_name}' not defined")))?;
    b.entry(entry_idx);
    b.try_build().map_err(|e| err(entry_line, e))
}

/// Parse statements in `lines[start..end)`; returns ops and the index of
/// the terminating `end` (== `end` argument for proc bodies, or the index
/// of the loop's `end` for nested bodies).
fn parse_body(
    lines: &[Line],
    start: usize,
    end: usize,
    procs: &HashMap<String, usize>,
) -> Result<(Vec<Op>, usize), DslError> {
    let mut ops = Vec::new();
    let mut i = start;
    while i < end {
        let line = &lines[i];
        let t = &line.tokens;
        match t[0].as_str() {
            "work" => {
                let (l, rest) = parse_at(line.no, &t[1..])?;
                let opts = Opts::parse(line.no, rest)?;
                opts.check_known(&["cycles", "instr", "flops", "l1", "idle"], &["fixed"])?;
                let cycles: u64 = opts.req_num("cycles")?;
                let mut costs = Costs::ZERO;
                costs[Counter::Cycles] = cycles;
                costs[Counter::Instructions] = opts.num("instr")?.unwrap_or(cycles);
                costs[Counter::FpOps] = opts.num("flops")?.unwrap_or(0);
                costs[Counter::L1DcMisses] = opts.num("l1")?.unwrap_or(0);
                costs[Counter::Idleness] = opts.num("idle")?.unwrap_or(0);
                ops.push(if opts.flag("fixed") {
                    Op::work_fixed(l, costs)
                } else {
                    Op::work(l, costs)
                });
                i += 1;
            }
            "compute" => {
                let (l, rest) = parse_at(line.no, &t[1..])?;
                let opts = Opts::parse(line.no, rest)?;
                opts.check_known(&["flops", "eff", "peak", "l1"], &["fixed"])?;
                let flops: u64 = opts.req_num("flops")?;
                let eff: f64 = opts.req_num("eff")?;
                if !(eff > 0.0 && eff <= 1.0) {
                    return Err(err(line.no, "eff must be in (0, 1]"));
                }
                let peak: f64 = opts.num("peak")?.unwrap_or(4.0);
                let mut costs = Costs::compute(flops, peak, eff);
                if let Some(l1) = opts.num("l1")? {
                    costs[Counter::L1DcMisses] = l1;
                }
                ops.push(if opts.flag("fixed") {
                    Op::work_fixed(l, costs)
                } else {
                    Op::work(l, costs)
                });
                i += 1;
            }
            "memory" => {
                let (l, rest) = parse_at(line.no, &t[1..])?;
                let opts = Opts::parse(line.no, rest)?;
                opts.check_known(&["cycles", "misses"], &["fixed"])?;
                let costs = Costs::memory(opts.req_num("cycles")?, opts.req_num("misses")?);
                ops.push(if opts.flag("fixed") {
                    Op::work_fixed(l, costs)
                } else {
                    Op::work(l, costs)
                });
                i += 1;
            }
            "loop" => {
                let (l, rest) = parse_at(line.no, &t[1..])?;
                let opts = Opts::parse(line.no, rest)?;
                opts.check_known(&["trips"], &[])?;
                let trips: u32 = opts.req_num("trips")?;
                // Find this loop's `end`.
                let mut depth = 0usize;
                let mut j = i + 1;
                let close = loop {
                    if j >= end {
                        return Err(err(line.no, "loop: missing 'end'"));
                    }
                    match lines[j].tokens[0].as_str() {
                        "loop" => depth += 1,
                        "end" if depth == 0 => break j,
                        "end" => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                };
                let (body, _) = parse_body(lines, i + 1, close, procs)?;
                ops.push(Op::looped(l, trips, body));
                i = close + 1;
            }
            "call" => {
                let name = t
                    .get(1)
                    .ok_or_else(|| err(line.no, "call needs a procedure name"))?;
                let callee = *procs
                    .get(name)
                    .ok_or_else(|| err(line.no, format!("unknown procedure '{name}'")))?;
                let (l, rest) = parse_at(line.no, &t[2..])?;
                let opts = Opts::parse(line.no, rest)?;
                opts.check_known(&["recurse"], &["inline"])?;
                let recurse: Option<u32> = opts.num("recurse")?;
                ops.push(match (opts.flag("inline"), recurse) {
                    (true, Some(_)) => {
                        return Err(err(line.no, "a call cannot be both inline and recursive"))
                    }
                    (true, None) => Op::call_inline(l, callee),
                    (false, Some(n)) => Op::call_recursive(l, callee, n),
                    (false, None) => Op::call(l, callee),
                });
                i += 1;
            }
            "barrier" => {
                let (l, rest) = parse_at(line.no, &t[1..])?;
                let opts = Opts::parse(line.no, rest)?;
                opts.check_known(&["id"], &[])?;
                ops.push(Op::Barrier {
                    line: l,
                    id: opts.req_num("id")?,
                });
                i += 1;
            }
            other => return Err(err(line.no, format!("unknown statement '{other}'"))),
        }
    }
    Ok((ops, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecConfig};
    use crate::lower::lower;

    const SAMPLE: &str = "\
# a tiny app
program demo

proc helper @ app.c:10
  compute @ 11 flops=4000 eff=0.5   # 2000 cycles at peak 4
end

proc main @ app.c:1
  work @ 2 cycles=100
  loop @ 3 trips=5
    call helper @ 4
  end
end

entry main
";

    #[test]
    fn parses_and_runs() {
        let program = parse(SAMPLE).unwrap();
        assert_eq!(program.name, "demo");
        assert_eq!(program.procs.len(), 2);
        let bin = lower(&program);
        let res = execute(&bin, &ExecConfig::default()).unwrap();
        // 100 + 5 × 2000 cycles.
        assert_eq!(res.totals[Counter::Cycles], 100 + 5 * 2000);
        assert_eq!(res.totals[Counter::FpOps], 5 * 4000);
    }

    #[test]
    fn forward_references_and_recursion() {
        let src = "\
program rec
proc main @ r.c:1
  call g @ 2
end
proc g @ r.c:10
  work @ 11 cycles=50
  call g @ 12 recurse=3
end
entry main
";
        let program = parse(src).unwrap();
        let res = execute(&lower(&program), &ExecConfig::default()).unwrap();
        assert_eq!(res.totals[Counter::Cycles], 150, "three activations");
    }

    #[test]
    fn modules_inline_and_fixed() {
        let src = "\
program multi
proc fastset in libirc.so nosource
  memory @ 0 cycles=400 misses=96
end
proc io @ io.c:5
  work @ 6 cycles=1000 fixed
end
proc main @ m.c:1
  call fastset @ 2
  call io @ 3
  work @ 4 cycles=500 flops=200 l1=7
end
entry main
";
        let program = parse(src).unwrap();
        assert_eq!(program.procs[0].module.as_deref(), Some("libirc.so"));
        assert!(!program.procs[0].has_source);
        // The fixed section ignores scaling.
        let base = execute(&lower(&program), &ExecConfig::default()).unwrap();
        let scaled = execute(
            &lower(&program),
            &ExecConfig {
                work_scale: 2.0,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let delta = scaled.totals[Counter::Cycles] - base.totals[Counter::Cycles];
        assert_eq!(delta, 400 + 500, "only the scalable work doubled");
    }

    #[test]
    fn nested_loops() {
        let src = "\
program nest
proc main @ n.c:1
  loop @ 2 trips=3
    loop @ 3 trips=4
      work @ 4 cycles=2
    end
    work @ 5 cycles=1
  end
end
entry main
";
        let program = parse(src).unwrap();
        let res = execute(&lower(&program), &ExecConfig::default()).unwrap();
        assert_eq!(res.totals[Counter::Cycles], 3 * (4 * 2 + 1));
    }

    #[test]
    fn barriers_parse() {
        let src = "\
program spmd
proc main @ s.c:1
  work @ 2 cycles=10
  barrier @ 3 id=0
end
entry main
";
        let program = parse(src).unwrap();
        let res = execute(&lower(&program), &ExecConfig::default()).unwrap();
        assert_eq!(res.barrier_arrivals.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("", 1, "empty"),
            ("proc x @ a.c:1\nend\nentry x", 1, "expected 'program"),
            ("program p\nproc x\nend\nentry x", 2, "needs '@ file:line'"),
            (
                "program p\nproc x @ a.c:1\n  work @ 2\nend\nentry x",
                3,
                "missing required option 'cycles='",
            ),
            (
                "program p\nproc x @ a.c:1\n  work @ 2 cycles=ten\nend\nentry x",
                3,
                "bad number",
            ),
            (
                "program p\nproc x @ a.c:1\n  call nope @ 2\nend\nentry x",
                3,
                "unknown procedure 'nope'",
            ),
            (
                "program p\nproc x @ a.c:1\n  loop @ 2 trips=3\n  work @ 3 cycles=1\nend\nentry x",
                6,
                "missing 'end'",
            ),
            (
                "program p\nproc x @ a.c:1\n  work @ 2 cycles=1 bogus=3\nend\nentry x",
                3,
                "unknown option 'bogus='",
            ),
            ("program p\nproc x @ a.c:1\nend", 3, "missing 'entry"),
            (
                "program p\nproc x @ a.c:1\nend\nentry zz",
                4,
                "entry proc 'zz' not defined",
            ),
            (
                "program p\nproc x @ a.c:1\nend\nproc x @ a.c:9\nend\nentry x",
                4,
                "duplicate proc",
            ),
            (
                "program p\nproc x @ a.c:1\n  compute @ 2 flops=10 eff=1.5\nend\nentry x",
                3,
                "eff must be in",
            ),
        ];
        for (src, line, needle) in cases {
            let e = parse(src).expect_err(src);
            assert_eq!(e.line, *line, "{src} => {e}");
            assert!(e.message.contains(needle), "{src} => {e}");
        }
    }

    #[test]
    fn unguarded_recursion_is_rejected_semantically() {
        let src = "\
program p
proc x @ a.c:1
  work @ 2 cycles=1
  call x @ 3
end
entry x
";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("unguarded call cycle"), "{e}");
    }
}
