//! The simulated machine's hardware performance counters.
//!
//! The paper's case studies use PAPI counters (`PAPI_TOT_CYC`,
//! `PAPI_L1_DCM`, `PAPI_FP_OPS`); our simulated CPU exposes the same set,
//! plus an instruction counter and an `IDLENESS` counter that the SPMD
//! harness uses for load-imbalance analysis (Section VI-C).

use callpath_core::prelude::MetricDesc;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut};

/// Counter indices. Fixed at compile time: the cost model is a dense array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Counter {
    /// Total cycles (`PAPI_TOT_CYC`).
    Cycles = 0,
    /// Retired instructions (`PAPI_TOT_INS`).
    Instructions = 1,
    /// Floating-point operations (`PAPI_FP_OPS`).
    FpOps = 2,
    /// L1 data-cache misses (`PAPI_L1_DCM`).
    L1DcMisses = 3,
    /// Synchronization waiting time (injected, not sampled).
    Idleness = 4,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 5;
    /// Every counter, in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Cycles,
        Counter::Instructions,
        Counter::FpOps,
        Counter::L1DcMisses,
        Counter::Idleness,
    ];

    /// The PAPI-style event name.
    pub fn papi_name(self) -> &'static str {
        match self {
            Counter::Cycles => "PAPI_TOT_CYC",
            Counter::Instructions => "PAPI_TOT_INS",
            Counter::FpOps => "PAPI_FP_OPS",
            Counter::L1DcMisses => "PAPI_L1_DCM",
            Counter::Idleness => "IDLENESS",
        }
    }

    /// Display unit.
    pub fn unit(self) -> &'static str {
        match self {
            Counter::Cycles => "cycles",
            Counter::Instructions => "instructions",
            Counter::FpOps => "ops",
            Counter::L1DcMisses => "misses",
            Counter::Idleness => "cycles",
        }
    }

    /// Counter from its dense index.
    pub fn from_index(i: usize) -> Counter {
        Counter::ALL[i]
    }
}

/// Event counts per counter: the cost of a work chunk, or an accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Costs(pub [u64; Counter::COUNT]);

impl Costs {
    /// All-zero costs.
    pub const ZERO: Costs = Costs([0; Counter::COUNT]);

    /// A typical "balanced" instruction mix for `cycles` cycles of work:
    /// roughly one instruction per cycle and no FP or cache traffic.
    pub fn cycles(cycles: u64) -> Costs {
        let mut c = Costs::ZERO;
        c[Counter::Cycles] = cycles;
        c[Counter::Instructions] = cycles;
        c
    }

    /// Compute-bound work: `flops` floating-point ops at the given
    /// efficiency relative to a `peak` FLOPs/cycle machine.
    ///
    /// `efficiency` ∈ (0, 1]: cycles = flops / (peak × efficiency).
    pub fn compute(flops: u64, peak: f64, efficiency: f64) -> Costs {
        assert!(efficiency > 0.0 && efficiency <= 1.0);
        assert!(peak > 0.0);
        let cycles = (flops as f64 / (peak * efficiency)).ceil() as u64;
        let mut c = Costs::ZERO;
        c[Counter::Cycles] = cycles.max(1);
        c[Counter::Instructions] = cycles.max(1);
        c[Counter::FpOps] = flops;
        c
    }

    /// Memory-bound streaming work: cycles dominated by cache misses.
    pub fn memory(cycles: u64, l1_misses: u64) -> Costs {
        let mut c = Costs::ZERO;
        c[Counter::Cycles] = cycles;
        c[Counter::Instructions] = cycles / 4 + 1;
        c[Counter::L1DcMisses] = l1_misses;
        c
    }

    /// Pure idleness (waiting at a synchronization point).
    pub fn idle(cycles: u64) -> Costs {
        let mut c = Costs::ZERO;
        c[Counter::Cycles] = cycles;
        c[Counter::Idleness] = cycles;
        c
    }

    /// Builder-style override of one counter.
    pub fn with(mut self, counter: Counter, value: u64) -> Costs {
        self[counter] = value;
        self
    }

    /// Scale every component (used for per-rank imbalance). Rounds to
    /// nearest, never below 1 for non-zero inputs so scaled work remains
    /// observable.
    pub fn scaled(self, factor: f64) -> Costs {
        assert!(factor >= 0.0);
        let mut out = Costs::ZERO;
        for i in 0..Counter::COUNT {
            if self.0[i] > 0 {
                out.0[i] = ((self.0[i] as f64 * factor).round() as u64).max(1);
            }
        }
        out
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0)
    }

    /// Events of one counter.
    pub fn total(&self, counter: Counter) -> u64 {
        self[counter]
    }
}

impl Index<Counter> for Costs {
    type Output = u64;

    fn index(&self, c: Counter) -> &u64 {
        &self.0[c as usize]
    }
}

impl IndexMut<Counter> for Costs {
    fn index_mut(&mut self, c: Counter) -> &mut u64 {
        &mut self.0[c as usize]
    }
}

impl Add for Costs {
    type Output = Costs;

    fn add(mut self, rhs: Costs) -> Costs {
        self += rhs;
        self
    }
}

impl AddAssign for Costs {
    fn add_assign(&mut self, rhs: Costs) {
        for i in 0..Counter::COUNT {
            self.0[i] += rhs.0[i];
        }
    }
}

/// Metric descriptors for a sampling configuration, in counter order, with
/// the sampling period recorded so attributed costs are in event units.
pub fn metric_descs(periods: &[u64; Counter::COUNT]) -> Vec<MetricDesc> {
    Counter::ALL
        .iter()
        .map(|&c| MetricDesc::new(c.papi_name(), c.unit(), periods[c as usize] as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut c = Costs::ZERO;
        c[Counter::FpOps] = 42;
        assert_eq!(c[Counter::FpOps], 42);
        assert_eq!(c[Counter::Cycles], 0);
    }

    #[test]
    fn compute_costs_respect_efficiency() {
        // 4 flops/cycle peak at 100% efficiency: 1000 flops in 250 cycles.
        let c = Costs::compute(1000, 4.0, 1.0);
        assert_eq!(c[Counter::Cycles], 250);
        assert_eq!(c[Counter::FpOps], 1000);
        // 6% efficiency needs ~16.7x the cycles.
        let slow = Costs::compute(1000, 4.0, 0.06);
        assert!(slow[Counter::Cycles] > 4000);
    }

    #[test]
    fn memory_costs_carry_misses() {
        let c = Costs::memory(1000, 50);
        assert_eq!(c[Counter::L1DcMisses], 50);
        assert_eq!(c[Counter::Cycles], 1000);
        assert_eq!(c[Counter::FpOps], 0);
    }

    #[test]
    fn idle_is_cycles_plus_idleness() {
        let c = Costs::idle(10);
        assert_eq!(c[Counter::Cycles], 10);
        assert_eq!(c[Counter::Idleness], 10);
        assert_eq!(c[Counter::Instructions], 0);
    }

    #[test]
    fn add_is_componentwise() {
        let a = Costs::cycles(10) + Costs::memory(5, 2);
        assert_eq!(a[Counter::Cycles], 15);
        assert_eq!(a[Counter::L1DcMisses], 2);
    }

    #[test]
    fn scaling_preserves_nonzero() {
        let c = Costs::cycles(10).scaled(0.01);
        assert_eq!(c[Counter::Cycles], 1, "scaled work stays observable");
        let z = Costs::ZERO.scaled(3.0);
        assert!(z.is_zero());
    }

    #[test]
    fn descs_carry_periods() {
        let periods = [1000, 1000, 500, 100, 1000];
        let descs = metric_descs(&periods);
        assert_eq!(descs.len(), Counter::COUNT);
        assert_eq!(descs[0].name, "PAPI_TOT_CYC");
        assert_eq!(descs[3].period, 100.0);
    }
}
