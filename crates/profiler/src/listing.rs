//! Pseudo-source generation: reconstruct a plausible source listing for
//! each file of a [`Program`], with every operation on the line the
//! program model says it is.
//!
//! Real applications come with source files the viewer reads from disk;
//! our synthetic applications don't, so we synthesize listings that are
//! line-accurate — the viewer's source pane navigation then works exactly
//! as it would on real code.

use crate::counters::Counter;
use crate::program::{Op, Program};
use std::collections::BTreeMap;

/// Generate `(file name, text)` pairs for every source file of `program`.
/// Line `n` of the text corresponds to source line `n`; lines nothing
/// maps to are left empty.
pub fn generate(program: &Program) -> Vec<(String, String)> {
    // file -> line -> rendered text (later writers win only if the slot
    // is empty, so procedure headers are not clobbered by body ops that
    // share the line).
    let mut lines: Vec<BTreeMap<u32, String>> = vec![BTreeMap::new(); program.files.len()];
    let mut put = |file: usize, line: u32, text: String| {
        if line == 0 {
            return;
        }
        lines[file].entry(line).or_insert(text);
    };

    for p in program.procs.iter().filter(|p| p.has_source) {
        put(p.file, p.def_line, format!("void {}() {{", p.name));
        render_body(&p.body, p.file, program, &mut put, 1);
    }

    lines
        .into_iter()
        .enumerate()
        .map(|(fi, map)| {
            let mut text = String::new();
            let last = map.keys().next_back().copied().unwrap_or(0);
            for l in 1..=last {
                if let Some(s) = map.get(&l) {
                    text.push_str(s);
                }
                text.push('\n');
            }
            (program.files[fi].clone(), text)
        })
        .collect()
}

fn render_body(
    body: &[Op],
    file: usize,
    program: &Program,
    put: &mut impl FnMut(usize, u32, String),
    depth: usize,
) {
    let indent = "  ".repeat(depth);
    for op in body {
        match op {
            Op::Work { line, costs, .. } => {
                let kind = if costs[Counter::FpOps] > 0 {
                    "compute"
                } else if costs[Counter::L1DcMisses] > 0 {
                    "stream"
                } else {
                    "work"
                };
                put(
                    file,
                    *line,
                    format!("{indent}{kind}(/* {} cycles */);", costs[Counter::Cycles]),
                );
            }
            Op::Loop { line, trips, body } => {
                put(
                    file,
                    *line,
                    format!("{indent}for (i = 0; i < {trips}; i++) {{"),
                );
                render_body(body, file, program, put, depth + 1);
            }
            Op::Call {
                line,
                callee,
                inline,
                max_active,
            } => {
                let name = &program.procs[*callee].name;
                let note = match (inline, max_active) {
                    (true, _) => " /* inlined */",
                    (false, Some(_)) => " /* guarded */",
                    _ => "",
                };
                put(file, *line, format!("{indent}{name}();{note}"));
            }
            Op::Barrier { line, .. } => {
                put(file, *line, format!("{indent}MPI_Barrier(comm);"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Costs;
    use crate::program::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("app.c");
        let work = b.declare("work", f, 10);
        let main = b.declare("main", f, 1);
        b.body(
            work,
            vec![Op::looped(
                11,
                4,
                vec![Op::work(12, Costs::compute(100, 4.0, 0.5))],
            )],
        );
        b.body(main, vec![Op::call(3, work)]);
        b.entry(main);
        b.build()
    }

    #[test]
    fn lines_land_where_the_model_says() {
        let texts = generate(&sample());
        assert_eq!(texts.len(), 1);
        let (name, text) = &texts[0];
        assert_eq!(name, "app.c");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "void main() {");
        assert!(lines[2].contains("work();"), "{:?}", lines[2]);
        assert_eq!(lines[9], "void work() {");
        assert!(lines[10].contains("for (i = 0; i < 4;"));
        assert!(lines[11].contains("compute"));
    }

    #[test]
    fn binary_only_procs_produce_no_source() {
        let mut b = ProgramBuilder::new("app");
        let rt = b.declare_binary_only("__start");
        let f = b.file("m.c");
        let main = b.declare("main", f, 1);
        b.body(main, vec![Op::work(2, Costs::cycles(1))]);
        b.body(rt, vec![Op::call(0, main)]);
        b.entry(rt);
        let texts = generate(&b.build());
        // The "<unknown>" pseudo-file must not mention the runtime proc.
        let unknown = texts.iter().find(|(n, _)| n == "<unknown>").unwrap();
        assert!(!unknown.1.contains("__start"));
    }

    #[test]
    fn gap_lines_are_blank() {
        let texts = generate(&sample());
        let (_, text) = &texts[0];
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1], "", "line 2 has no op");
    }
}
