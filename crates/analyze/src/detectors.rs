//! Canned detectors: pure functions that turn profiles into structured
//! [`Verdict`]s with evidence call paths.
//!
//! Each detector composes primitives the repo already has — per-rank
//! statistics from `parallel::imbalance`, scale-and-difference from
//! `core::diff`, derived waste/efficiency formulas from `core::derived`
//! semantics, ensemble z-scores from the `.cpens` directory — and
//! reduces them to one deterministic, comparison-friendly verdict:
//! a status, a scalar score, the threshold it was judged against, and
//! the call paths (or runs/ranks) that carry the blame. Rendering is
//! byte-stable and pinned by golden tests on the three paper workloads.

use crate::query::path_labels;
use crate::{finite, fmt_num};
use callpath_core::experiment::Experiment;
use callpath_core::hotpath::HotPathConfig;
use callpath_core::jsonval::{obj, Json};
use callpath_core::view::View;
use callpath_expdb::ens::Directory;
use callpath_parallel::imbalance::ImbalanceStats;

/// Outcome of a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Below the warn threshold.
    Pass,
    /// Crossed the warn threshold.
    Warn,
    /// Crossed the fail threshold.
    Fail,
}

impl Status {
    /// Judge `score` against a warn/fail threshold pair (higher is
    /// worse).
    pub fn judge(score: f64, warn: f64, fail: f64) -> Status {
        if score >= fail {
            Status::Fail
        } else if score >= warn {
            Status::Warn
        } else {
            Status::Pass
        }
    }

    /// Stable uppercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Status::Pass => "PASS",
            Status::Warn => "WARN",
            Status::Fail => "FAIL",
        }
    }
}

/// One piece of evidence: a path (call path, rank, or run label) and
/// named values measured there.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// Call-path labels root-down, or a single rank/run label.
    pub path: Vec<String>,
    /// Named values, in a fixed detector-chosen order.
    pub values: Vec<(String, f64)>,
}

/// A structured detector verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Detector name (stable, kebab-case).
    pub detector: String,
    /// Pass / warn / fail.
    pub status: Status,
    /// The scalar the thresholds judge (higher is worse).
    pub score: f64,
    /// The warn threshold the score was judged against.
    pub threshold: f64,
    /// One-line human summary.
    pub summary: String,
    /// Blame-carrying paths.
    pub evidence: Vec<Evidence>,
}

impl Verdict {
    /// Deterministic human-readable rendering (golden-pinned).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} score={} warn_at={}",
            self.detector,
            self.status.as_str(),
            fmt_num(self.score),
            fmt_num(self.threshold)
        );
        let _ = writeln!(out, "  {}", self.summary);
        for e in &self.evidence {
            let _ = writeln!(out, "  - {}", e.path.join(" > "));
            let vals: Vec<String> = e
                .values
                .iter()
                .map(|(k, v)| format!("{k}={}", fmt_num(*v)))
                .collect();
            let _ = writeln!(out, "      {}", vals.join(" "));
        }
        out
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("detector", Json::Str(self.detector.clone())),
            ("status", Json::Str(self.status.as_str().to_owned())),
            ("score", Json::Num(finite(self.score))),
            ("threshold", Json::Num(finite(self.threshold))),
            ("summary", Json::Str(self.summary.clone())),
            (
                "evidence",
                Json::Arr(
                    self.evidence
                        .iter()
                        .map(|e| {
                            obj(vec![
                                (
                                    "path",
                                    Json::Arr(e.path.iter().cloned().map(Json::Str).collect()),
                                ),
                                (
                                    "values",
                                    Json::Obj(
                                        e.values
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::Num(finite(*v))))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

// ------------------------------------------------------- load imbalance

/// Thresholds for [`load_imbalance`].
#[derive(Debug, Clone, Copy)]
pub struct ImbalanceConfig {
    /// Warn when `max/mean - 1` reaches this.
    pub warn_factor: f64,
    /// Fail when it reaches this.
    pub fail_factor: f64,
    /// How many worst ranks to cite.
    pub top: usize,
}

impl Default for ImbalanceConfig {
    fn default() -> Self {
        ImbalanceConfig {
            warn_factor: 0.15,
            fail_factor: 0.5,
            top: 3,
        }
    }
}

/// Judge a per-rank value series (Fig. 7's scattered totals reduced to
/// scalars): score is the classic imbalance factor `max/mean - 1`.
pub fn load_imbalance(series: &[f64], what: &str, cfg: &ImbalanceConfig) -> Verdict {
    let stats = ImbalanceStats::of(series);
    let score = finite(stats.imbalance_factor);
    let mut evidence = vec![Evidence {
        path: vec![what.to_owned()],
        values: vec![
            ("mean".to_owned(), stats.mean),
            ("min".to_owned(), stats.min),
            ("max".to_owned(), stats.max),
            ("stddev".to_owned(), stats.std_dev),
            ("cov".to_owned(), finite(stats.cov)),
        ],
    }];
    let mut worst: Vec<(usize, f64)> = series.iter().copied().enumerate().collect();
    worst.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    for (rank, v) in worst.into_iter().take(cfg.top) {
        evidence.push(Evidence {
            path: vec![format!("rank {rank}")],
            values: vec![
                ("value".to_owned(), v),
                (
                    "vs_mean".to_owned(),
                    finite(if stats.mean != 0.0 {
                        v / stats.mean
                    } else {
                        0.0
                    }),
                ),
            ],
        });
    }
    Verdict {
        detector: "load-imbalance".to_owned(),
        status: Status::judge(score, cfg.warn_factor, cfg.fail_factor),
        score,
        threshold: cfg.warn_factor,
        summary: format!(
            "imbalance factor {} over {} ranks of {what} (mean {}, max {})",
            fmt_num(score),
            series.len(),
            fmt_num(stats.mean),
            fmt_num(stats.max)
        ),
        evidence,
    }
}

/// [`load_imbalance`] plus a hot-path evidence entry: the dominant call
/// path of `col_name` in `exp` (typically the mean profile the ranks
/// diverge around), so the verdict points *where* the imbalanced time
/// goes, not just which ranks carry it.
pub fn load_imbalance_with_context(
    series: &[f64],
    what: &str,
    cfg: &ImbalanceConfig,
    exp: &Experiment,
    col_name: &str,
) -> Result<Verdict, String> {
    let col = exp
        .columns
        .find(col_name)
        .ok_or_else(|| format!("unknown column '{col_name}'"))?;
    let mut verdict = load_imbalance(series, what, cfg);
    let mut view = View::calling_context(exp);
    let roots = view.roots();
    if let Some(&start) = roots.first() {
        let path = view.hot_path(start, col, HotPathConfig::default());
        let labels: Vec<String> = path.iter().map(|&n| view.label(n)).collect();
        if let Some(&leaf) = path.last() {
            verdict.evidence.push(Evidence {
                path: labels,
                values: vec![(format!("{col_name} at leaf"), view.value(col, leaf))],
            });
        }
    }
    Ok(verdict)
}

// --------------------------------------------------------- scaling loss

/// Thresholds for [`scaling_loss_verdict`].
#[derive(Debug, Clone, Copy)]
pub struct ScalingConfig {
    /// Factor by which base costs should grow in the peer run (see
    /// [`callpath_core::diff::scaling_loss`]).
    pub expected_scale: f64,
    /// Warn when the lost fraction of the peer run reaches this.
    pub warn_frac: f64,
    /// Fail when it reaches this.
    pub fail_frac: f64,
    /// How many loss-carrying frames to cite.
    pub top: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            expected_scale: 1.0,
            warn_frac: 0.05,
            fail_frac: 0.25,
            top: 3,
        }
    }
}

/// Scale-and-difference two runs (Section VI-A) and judge the lost
/// fraction: score is `loss@root / peer_total`.
pub fn scaling_loss_verdict(
    base: &Experiment,
    label_base: &str,
    peer: &Experiment,
    label_peer: &str,
    metric: &str,
    cfg: &ScalingConfig,
) -> Result<Verdict, String> {
    let analysis = callpath_core::diff::scaling_loss(
        base,
        label_base,
        peer,
        label_peer,
        metric,
        cfg.expected_scale,
    )?;
    let exp = &analysis.experiment;
    let root = exp.cct.root();
    let peer_total = exp.aggregate(analysis.peer_incl);
    let loss_root = exp.columns.get(analysis.loss_incl, root.0);
    let score = finite(if peer_total > 0.0 {
        loss_root / peer_total
    } else {
        0.0
    });
    let mut frames: Vec<(u32, f64)> = exp
        .cct
        .all_nodes()
        .filter(|&n| exp.cct.kind(n).is_frame())
        .map(|n| (n.0, exp.columns.get(analysis.loss_incl, n.0)))
        .filter(|&(_, v)| v > 0.0)
        .collect();
    frames.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let evidence = frames
        .into_iter()
        .take(cfg.top)
        .map(|(n, v)| Evidence {
            path: path_labels(exp, callpath_core::ids::NodeId(n)),
            values: vec![
                ("loss".to_owned(), v),
                (
                    "share".to_owned(),
                    finite(if loss_root != 0.0 { v / loss_root } else { 0.0 }),
                ),
            ],
        })
        .collect();
    Ok(Verdict {
        detector: "scaling-loss".to_owned(),
        status: Status::judge(score, cfg.warn_frac, cfg.fail_frac),
        score,
        threshold: cfg.warn_frac,
        summary: format!(
            "{} of {label_peer} is scaling loss vs {label_base} on {metric} (loss {}, peer total {})",
            fmt_num(score),
            fmt_num(loss_root),
            fmt_num(peer_total)
        ),
        evidence,
    })
}

// -------------------------------------------------------- derived waste

/// Thresholds for [`derived_waste`].
#[derive(Debug, Clone, Copy)]
pub struct WasteConfig {
    /// Machine peak, in flops per cycle.
    pub peak_flops_per_cycle: f64,
    /// Warn when the wasted fraction of peak reaches this.
    pub warn_frac: f64,
    /// Fail when it reaches this.
    pub fail_frac: f64,
    /// How many waste-carrying frames to cite.
    pub top: usize,
}

impl Default for WasteConfig {
    fn default() -> Self {
        WasteConfig {
            peak_flops_per_cycle: 4.0,
            warn_frac: 0.5,
            fail_frac: 0.9,
            top: 3,
        }
    }
}

/// The paper's Section V-D waste/efficiency derived metrics as a
/// verdict: `waste = cycles × peak − flops`, score is the wasted
/// fraction of peak (`1 − flops/(cycles × peak)`). Reads only the four
/// presentation columns it names; `exp` is not mutated.
pub fn derived_waste(
    exp: &Experiment,
    cycles: &str,
    flops: &str,
    cfg: &WasteConfig,
) -> Result<Verdict, String> {
    let ci = exp
        .columns
        .find(&format!("{cycles} (I)"))
        .ok_or_else(|| format!("unknown metric '{cycles}'"))?;
    let fi = exp
        .columns
        .find(&format!("{flops} (I)"))
        .ok_or_else(|| format!("unknown metric '{flops}'"))?;
    let ce = exp
        .columns
        .find(&format!("{cycles} (E)"))
        .ok_or_else(|| format!("unknown metric '{cycles}'"))?;
    let fe = exp
        .columns
        .find(&format!("{flops} (E)"))
        .ok_or_else(|| format!("unknown metric '{flops}'"))?;
    let cyc_total = exp.aggregate(ci);
    let flop_total = exp.aggregate(fi);
    let peak_total = cyc_total * cfg.peak_flops_per_cycle;
    let efficiency = if peak_total > 0.0 {
        flop_total / peak_total
    } else {
        0.0
    };
    let score = finite((1.0 - efficiency).clamp(0.0, 1.0));
    let total_waste = peak_total - flop_total;
    let mut frames: Vec<(u32, f64)> = exp
        .cct
        .all_nodes()
        .filter(|&n| exp.cct.kind(n).is_frame())
        .map(|n| {
            let w = exp.columns.get(ce, n.0) * cfg.peak_flops_per_cycle - exp.columns.get(fe, n.0);
            (n.0, w)
        })
        .filter(|&(_, w)| w > 0.0)
        .collect();
    frames.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let evidence = frames
        .into_iter()
        .take(cfg.top)
        .map(|(n, w)| Evidence {
            path: path_labels(exp, callpath_core::ids::NodeId(n)),
            values: vec![
                ("waste".to_owned(), w),
                (
                    "share".to_owned(),
                    finite(if total_waste > 0.0 {
                        w / total_waste
                    } else {
                        0.0
                    }),
                ),
            ],
        })
        .collect();
    Ok(Verdict {
        detector: "derived-waste".to_owned(),
        status: Status::judge(score, cfg.warn_frac, cfg.fail_frac),
        score,
        threshold: cfg.warn_frac,
        summary: format!(
            "{} of peak wasted: {flops} {} vs {cycles} {} at peak {}/cycle",
            fmt_num(score),
            fmt_num(flop_total),
            fmt_num(cyc_total),
            fmt_num(cfg.peak_flops_per_cycle)
        ),
        evidence,
    })
}

// ----------------------------------------------------- ensemble outliers

/// Thresholds for [`ensemble_outliers`].
#[derive(Debug, Clone, Copy)]
pub struct OutlierConfig {
    /// Warn when any run's max z-score reaches this.
    pub z_warn: f64,
    /// Fail when it reaches this.
    pub z_fail: f64,
    /// How many outlier runs to cite.
    pub top: usize,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        OutlierConfig {
            z_warn: 2.0,
            z_fail: 4.0,
            top: 3,
        }
    }
}

/// Judge an ensemble directory by its per-run total z-scores (computed
/// from the directory alone — no run block is ever faulted): score is
/// the worst run's max z.
pub fn ensemble_outliers(dir: &Directory, cfg: &OutlierConfig) -> Verdict {
    let scores = callpath_ensemble::outlier_scores(dir);
    let score = finite(scores.first().map(|&(_, z)| z).unwrap_or(0.0));
    let flagged = scores.iter().filter(|&&(_, z)| z >= cfg.z_warn).count();
    let evidence = scores
        .iter()
        .take(cfg.top)
        .filter(|&&(_, z)| z >= cfg.z_warn)
        .map(|&(r, z)| {
            let run = &dir.runs[r];
            let mut values = vec![("z".to_owned(), z)];
            for (m, name) in dir.metric_names.iter().enumerate() {
                values.push((format!("{name} total"), run.stats[m].1));
            }
            Evidence {
                path: vec![run.label.clone()],
                values,
            }
        })
        .collect();
    Verdict {
        detector: "ensemble-outliers".to_owned(),
        status: Status::judge(score, cfg.z_warn, cfg.z_fail),
        score,
        threshold: cfg.z_warn,
        summary: format!(
            "{flagged} of {} runs exceed z >= {} (worst z {})",
            dir.runs.len(),
            fmt_num(cfg.z_warn),
            fmt_num(score)
        ),
        evidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_expdb::ens::RunEntry;

    #[test]
    fn status_judging() {
        assert_eq!(Status::judge(0.0, 0.1, 0.5), Status::Pass);
        assert_eq!(Status::judge(0.1, 0.1, 0.5), Status::Warn);
        assert_eq!(Status::judge(0.7, 0.1, 0.5), Status::Fail);
    }

    #[test]
    fn balanced_series_passes() {
        let v = load_imbalance(
            &[10.0, 10.0, 10.0, 10.0],
            "cycles",
            &ImbalanceConfig::default(),
        );
        assert_eq!(v.status, Status::Pass);
        assert_eq!(v.score, 0.0);
        // One stats entry + top ranks.
        assert!(v.evidence.len() >= 2);
        assert_eq!(v.evidence[0].path, vec!["cycles".to_owned()]);
    }

    #[test]
    fn skewed_series_fails_and_blames_the_slow_rank() {
        let mut series = vec![10.0; 16];
        series[7] = 30.0;
        let v = load_imbalance(&series, "cycles", &ImbalanceConfig::default());
        assert_eq!(v.status, Status::Fail);
        assert_eq!(v.evidence[1].path, vec!["rank 7".to_owned()]);
        let json = v.to_json().to_json();
        assert!(json.contains("\"status\":\"FAIL\""), "{json}");
    }

    #[test]
    fn outlier_directory_verdict() {
        let run = |label: &str, total: f64| RunEntry {
            label: label.to_owned(),
            fingerprint: 0,
            stats: vec![(4, total)],
        };
        let mut runs: Vec<RunEntry> = (0..20).map(|i| run(&format!("r{i:02}"), 100.0)).collect();
        runs[13] = run("r13", 5000.0);
        let dir = Directory {
            metric_names: vec!["cycles".to_owned()],
            runs,
        };
        let v = ensemble_outliers(&dir, &OutlierConfig::default());
        assert_eq!(v.status, Status::Fail);
        assert_eq!(v.evidence.len(), 1);
        assert_eq!(v.evidence[0].path, vec!["r13".to_owned()]);
    }

    #[test]
    fn render_is_stable() {
        let v = load_imbalance(&[1.0, 3.0], "t", &ImbalanceConfig::default());
        let a = v.render();
        let b = v.render();
        assert_eq!(a, b);
        assert!(
            a.starts_with("load-imbalance: FAIL score=0.5000 warn_at=0.1500"),
            "{a}"
        );
    }
}
