#![warn(missing_docs)]
//! # callpath-analyze
//!
//! The analysis path: from *presenting* call path profiles (the paper's
//! contribution) to *programmatically interrogating* them. Three layers:
//!
//! * a typed **query language** over an [`Experiment`]'s CCT and
//!   presentation columns ([`query`]) — procedure/module/file regex
//!   matches, metric thresholds (absolute or percent-of-program),
//!   boolean composition and subtree aggregates — evaluated lazily so a
//!   query over a v2.1/`.cpens` database faults only the columns it
//!   names;
//! * **canned detectors** ([`detectors`]): pure functions that turn a
//!   profile (or ensemble directory) into a structured [`Verdict`] with
//!   evidence call paths — load imbalance, scaling-loss attribution,
//!   derived-metric waste, ensemble outliers;
//! * a **perf gate** ([`gate`]): candidate-vs-baseline comparison of
//!   `BENCH_*.json` records (or whole profiles reduced to per-metric
//!   totals) under a declarative tolerance policy, producing a
//!   machine- and human-readable report with a hard pass/fail bit.
//!
//! The regular-expression dialect used by queries and policies is the
//! bounded matcher in [`rex`] — hostile input cannot make it panic or
//! run away (pattern size, nesting depth and matching steps are all
//! capped).
//!
//! [`Experiment`]: callpath_core::experiment::Experiment
//! [`Verdict`]: detectors::Verdict

pub mod detectors;
pub mod gate;
pub mod query;
pub mod rex;

pub use detectors::{
    derived_waste, ensemble_outliers, load_imbalance, load_imbalance_with_context,
    scaling_loss_verdict, Evidence, ImbalanceConfig, OutlierConfig, ScalingConfig, Status, Verdict,
    WasteConfig,
};
pub use gate::{
    gate_records, load_bench_records, parse_policy, record_from_experiment, BenchRecord,
    GateReport, GateRow, Policy, RowVerdict, Rule,
};
pub use query::{eval_mask, path_labels, run_query, Pred, Query, QueryHit, QueryReport};
pub use rex::Rex;

/// Deterministic number formatting shared by every human-readable
/// rendering in this crate: whole values that fit `i64` print without a
/// fraction, everything else with four decimals, non-finite values by
/// name. Pinned by the golden verdict tests.
pub fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return if x.is_nan() {
            "nan".to_owned()
        } else if x > 0.0 {
            "inf".to_owned()
        } else {
            "-inf".to_owned()
        };
    }
    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        format!("{}", x as i64)
    } else {
        format!("{x:.4}")
    }
}

/// Clamp a score to something JSON can carry: non-finite values degrade
/// to `0.0` (NaN) or `±1e9` (infinities).
pub fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else if x.is_nan() {
        0.0
    } else if x > 0.0 {
        1e9
    } else {
        -1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_num_is_deterministic() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(-2.0), "-2");
        assert_eq!(fmt_num(0.5), "0.5000");
        assert_eq!(fmt_num(f64::NAN), "nan");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
        assert_eq!(fmt_num(f64::NEG_INFINITY), "-inf");
    }

    #[test]
    fn finite_clamps() {
        assert_eq!(finite(2.5), 2.5);
        assert_eq!(finite(f64::NAN), 0.0);
        assert_eq!(finite(f64::INFINITY), 1e9);
        assert_eq!(finite(f64::NEG_INFINITY), -1e9);
    }
}
