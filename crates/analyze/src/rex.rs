//! A bounded regular-expression matcher for query predicates and gate
//! policies.
//!
//! Queries arrive over the serve protocol and policies off disk, so the
//! matcher is built for hostile input: the pattern is size- and
//! depth-capped at compile time, and matching runs under a fixed step
//! budget — a pathological pattern (`(a*)*b` against `aaaa…`) exhausts
//! the budget and reports "no match" instead of running away. No
//! external dependencies; the dialect is the practical core of POSIX
//! ERE: literals, `.`, `*`, `+`, `?`, `[...]`/`[^...]` with ranges,
//! `^`, `$`, `|`, `(...)` and `\`-escapes (plus `\d`, `\w`, `\s`).
//! Matching is an unanchored substring search unless the pattern
//! anchors itself.

use std::cell::Cell;

/// Longest accepted pattern, in bytes.
pub const MAX_PATTERN: usize = 512;
/// Deepest accepted group nesting.
const MAX_DEPTH: u32 = 32;
/// Matching step budget: exceeding it means "no match".
const STEP_BUDGET: u64 = 1 << 20;
/// Matching recursion cap: a branch this deep fails quietly instead of
/// overflowing the stack (text inputs here — labels, file names, bench
/// field names — are far shorter than this, and a greedy star past the
/// cap simply backtracks to fewer repetitions).
const MATCH_DEPTH: u32 = 350;

#[derive(Debug, Clone)]
enum ClassItem {
    Single(char),
    Range(char, char),
    Digit,
    Word,
    Space,
}

#[derive(Debug, Clone)]
enum Atom {
    Char(char),
    Any,
    Class { neg: bool, items: Vec<ClassItem> },
    Start,
    End,
    Group(Alt),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Rep {
    One,
    Star,
    Plus,
    Opt,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    rep: Rep,
}

type Seq = Vec<Piece>;

#[derive(Debug, Clone)]
struct Alt {
    arms: Vec<Seq>,
}

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Rex {
    pattern: String,
    ast: Alt,
}

impl Rex {
    /// Compile `pattern`; every malformed or oversized pattern is an
    /// error, never a panic.
    pub fn compile(pattern: &str) -> Result<Rex, String> {
        if pattern.len() > MAX_PATTERN {
            return Err(format!(
                "pattern longer than {MAX_PATTERN} bytes ({})",
                pattern.len()
            ));
        }
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let ast = p.parse_alt(0)?;
        if p.pos != p.chars.len() {
            return Err(format!("unexpected ')' at char {}", p.pos));
        }
        Ok(Rex {
            pattern: pattern.to_owned(),
            ast,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Unanchored search: does any substring of `text` match?
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let ctx = Ctx {
            budget: Cell::new(STEP_BUDGET),
            depth: Cell::new(0),
        };
        for start in 0..=chars.len() {
            if m_alt(&self.ast, &chars, start, &ctx, &|_| true) {
                return true;
            }
            if ctx.budget.get() == 0 {
                return false;
            }
        }
        false
    }
}

/// Shared matcher state: the step budget and the *physical* recursion
/// depth. Depth lives in a cell (not a parameter) because continuations
/// run at the stack depth of their caller, not of their creation site —
/// a parameter would undercount and let hostile patterns overflow the
/// stack.
struct Ctx {
    budget: Cell<u64>,
    depth: Cell<u32>,
}

impl Ctx {
    /// Account one step and one stack level; false means "give up on
    /// this branch".
    fn enter(&self) -> bool {
        if self.budget.get() == 0 || self.depth.get() >= MATCH_DEPTH {
            return false;
        }
        self.budget.set(self.budget.get() - 1);
        self.depth.set(self.depth.get() + 1);
        true
    }

    fn leave(&self) {
        self.depth.set(self.depth.get() - 1);
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self, depth: u32) -> Result<Alt, String> {
        if depth > MAX_DEPTH {
            return Err(format!("groups nested deeper than {MAX_DEPTH}"));
        }
        let mut arms = vec![self.parse_seq(depth)?];
        while self.peek() == Some('|') {
            self.bump();
            arms.push(self.parse_seq(depth)?);
        }
        Ok(Alt { arms })
    }

    fn parse_seq(&mut self, depth: u32) -> Result<Seq, String> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom(depth)?;
            let rep = match self.peek() {
                Some('*') => {
                    self.bump();
                    Rep::Star
                }
                Some('+') => {
                    self.bump();
                    Rep::Plus
                }
                Some('?') => {
                    self.bump();
                    Rep::Opt
                }
                _ => Rep::One,
            };
            seq.push(Piece { atom, rep });
        }
        Ok(seq)
    }

    fn parse_atom(&mut self, depth: u32) -> Result<Atom, String> {
        let at = self.pos;
        match self.bump() {
            None => Err("unexpected end of pattern".into()),
            Some('(') => {
                let inner = self.parse_alt(depth + 1)?;
                if self.bump() != Some(')') {
                    return Err(format!("unclosed group opened at char {at}"));
                }
                Ok(Atom::Group(inner))
            }
            Some('[') => self.parse_class(at),
            Some('.') => Ok(Atom::Any),
            Some('^') => Ok(Atom::Start),
            Some('$') => Ok(Atom::End),
            Some('*') | Some('+') | Some('?') => {
                Err(format!("repetition with nothing to repeat at char {at}"))
            }
            Some('\\') => match self.bump() {
                None => Err("trailing backslash".into()),
                Some('d') => Ok(Atom::Class {
                    neg: false,
                    items: vec![ClassItem::Digit],
                }),
                Some('w') => Ok(Atom::Class {
                    neg: false,
                    items: vec![ClassItem::Word],
                }),
                Some('s') => Ok(Atom::Class {
                    neg: false,
                    items: vec![ClassItem::Space],
                }),
                Some(c) if c.is_ascii_alphanumeric() => {
                    Err(format!("unknown escape '\\{c}' at char {at}"))
                }
                Some(c) => Ok(Atom::Char(c)),
            },
            Some(c) => Ok(Atom::Char(c)),
        }
    }

    fn parse_class(&mut self, at: usize) -> Result<Atom, String> {
        let neg = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(format!("unclosed class opened at char {at}"));
            };
            if c == ']' && !items.is_empty() {
                return Ok(Atom::Class { neg, items });
            }
            let lo = if c == '\\' {
                match self.bump() {
                    None => return Err(format!("unclosed class opened at char {at}")),
                    Some('d') => {
                        items.push(ClassItem::Digit);
                        continue;
                    }
                    Some('w') => {
                        items.push(ClassItem::Word);
                        continue;
                    }
                    Some('s') => {
                        items.push(ClassItem::Space);
                        continue;
                    }
                    Some(e) if e.is_ascii_alphanumeric() => {
                        return Err(format!("unknown escape '\\{e}' in class"));
                    }
                    Some(e) => e,
                }
            } else {
                c
            };
            // A trailing or leading '-' is a literal; 'a-z' is a range.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let Some(hi) = self.bump() else {
                    return Err(format!("unclosed class opened at char {at}"));
                };
                let hi = if hi == '\\' {
                    match self.bump() {
                        Some(e) if !e.is_ascii_alphanumeric() => e,
                        _ => return Err("bad escape as range end".into()),
                    }
                } else {
                    hi
                };
                if hi < lo {
                    return Err(format!("inverted range '{lo}-{hi}'"));
                }
                items.push(ClassItem::Range(lo, hi));
            } else {
                items.push(ClassItem::Single(lo));
            }
        }
    }
}

fn class_match(items: &[ClassItem], c: char) -> bool {
    items.iter().any(|item| match item {
        ClassItem::Single(s) => *s == c,
        ClassItem::Range(lo, hi) => *lo <= c && c <= *hi,
        ClassItem::Digit => c.is_ascii_digit(),
        ClassItem::Word => c.is_ascii_alphanumeric() || c == '_',
        ClassItem::Space => c.is_whitespace(),
    })
}

/// Continuation-passing backtracking matcher. Every entry burns one
/// budget step and one depth level; an exhausted budget or an over-deep
/// branch fails quietly (a greedy star past the depth cap backtracks to
/// fewer repetitions).
fn m_alt(alt: &Alt, text: &[char], pos: usize, ctx: &Ctx, k: &dyn Fn(usize) -> bool) -> bool {
    alt.arms.iter().any(|arm| m_seq(arm, text, pos, ctx, k))
}

fn m_seq(seq: &[Piece], text: &[char], pos: usize, ctx: &Ctx, k: &dyn Fn(usize) -> bool) -> bool {
    if !ctx.enter() {
        return false;
    }
    let r = (|| {
        let Some((first, rest)) = seq.split_first() else {
            return k(pos);
        };
        let then = move |p: usize| m_seq(rest, text, p, ctx, k);
        match first.rep {
            Rep::One => m_atom(&first.atom, text, pos, ctx, &then),
            Rep::Opt => m_atom(&first.atom, text, pos, ctx, &then) || then(pos),
            Rep::Star => m_star(&first.atom, text, pos, ctx, &then),
            Rep::Plus => m_atom(&first.atom, text, pos, ctx, &|p| {
                m_star(&first.atom, text, p, ctx, &then)
            }),
        }
    })();
    ctx.leave();
    r
}

/// Greedy `atom*` then `k`: consume as many as possible (each iteration
/// must advance), backtracking into `k` at every boundary.
fn m_star(atom: &Atom, text: &[char], pos: usize, ctx: &Ctx, k: &dyn Fn(usize) -> bool) -> bool {
    if !ctx.enter() {
        return false;
    }
    let r = m_atom(atom, text, pos, ctx, &|p| {
        p > pos && m_star(atom, text, p, ctx, k)
    }) || k(pos);
    ctx.leave();
    r
}

fn m_atom(atom: &Atom, text: &[char], pos: usize, ctx: &Ctx, k: &dyn Fn(usize) -> bool) -> bool {
    if !ctx.enter() {
        return false;
    }
    let r = match atom {
        Atom::Char(c) => text.get(pos) == Some(c) && k(pos + 1),
        Atom::Any => pos < text.len() && k(pos + 1),
        Atom::Class { neg, items } => match text.get(pos) {
            Some(&c) => (class_match(items, c) != *neg) && k(pos + 1),
            None => false,
        },
        Atom::Start => pos == 0 && k(pos),
        Atom::End => pos == text.len() && k(pos),
        Atom::Group(alt) => m_alt(alt, text, pos, ctx, k),
    };
    ctx.leave();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Rex::compile(pat).unwrap().is_match(text)
    }

    #[test]
    fn literals_are_substring_searches() {
        assert!(m("solve", "mpi_solve_x"));
        assert!(!m("solve", "mpi_slove_x"));
        assert!(m("", "anything"));
    }

    #[test]
    fn anchors() {
        assert!(m("^main$", "main"));
        assert!(!m("^main$", "domain"));
        assert!(m("^mpi_", "mpi_waitall"));
        assert!(!m("^mpi_", "pmpi_wait"));
        assert!(m("\\.c$", "solver.c"));
        assert!(!m("\\.c$", "solver.cc"));
    }

    #[test]
    fn classes_and_reps() {
        assert!(m("rank_[0-9]+", "rank_042"));
        assert!(!m("rank_[0-9]+", "rank_"));
        assert!(m("[^a-z]", "ab9"));
        assert!(!m("[^a-z0-9]", "ab9"));
        assert!(m("a.c", "abc"));
        assert!(m("ab?c", "ac"));
        assert!(m("\\d\\d", "x42"));
        assert!(m("\\w+", "_id"));
        assert!(m("\\s", "a b"));
        assert!(m("[-x]", "-"), "leading/trailing dash is literal");
        assert!(m("[x-]", "-"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("mpi_(send|recv)", "mpi_recv"));
        assert!(!m("mpi_(send|recv)", "mpi_wait"));
        assert!(m("(ab)+c", "ababc"));
        assert!(!m("^(ab)+c$", "abac"));
    }

    #[test]
    fn malformed_patterns_are_errors() {
        for bad in [
            "(", "(a", "a)", "[", "[]", "[z-a]", "*a", "+", "?x", "\\", "\\q", "((((",
        ] {
            assert!(Rex::compile(bad).is_err(), "{bad:?} must not compile");
        }
        let long = "a".repeat(MAX_PATTERN + 1);
        assert!(Rex::compile(&long).is_err());
        let deep = format!("{}a{}", "(".repeat(40), ")".repeat(40));
        assert!(Rex::compile(&deep).is_err());
    }

    #[test]
    fn pathological_backtracking_exhausts_the_budget_quietly() {
        let r = Rex::compile("(a*)*b").unwrap();
        let text = "a".repeat(4096);
        // No panic, no runaway: budget exhausts and reports no match.
        assert!(!r.is_match(&text));
    }

    #[test]
    fn empty_star_does_not_loop() {
        assert!(m("(a?)*b", "b"));
        assert!(m("()*x", "x"));
    }

    #[test]
    fn unicode_text_is_matched_per_char() {
        assert!(m("^.é.$", "aéz"));
        assert!(m("é+", "café"));
    }
}
