//! The perf gate: candidate-vs-baseline comparison of bench records (or
//! whole profiles reduced to per-metric totals) under a declarative
//! tolerance policy.
//!
//! ## Policy files
//!
//! A small TOML subset, parsed by a hostile-input-safe hand parser
//! (truncated, oversized, or malformed files are errors, never panics):
//!
//! ```toml
//! [defaults]
//! tolerance_pct = 10.0      # allowed regression per gated field
//! fields = "_(ms|ns)$"      # which numeric fields are gated
//!
//! [[rule]]                  # later rules override earlier ones
//! bench = "session_nav"     # regex over the record name
//! field = "p95_ms"          # regex over the field name
//! tolerance_pct = 25.0
//! hard = true               # regression past tolerance fails the gate
//! ```
//!
//! Gated fields are **lower-is-better** (they are timings); a field is
//! a *regression* when `candidate > baseline × (1 + tolerance/100)`.
//! Rules are matched last-to-first: the last rule whose `bench` and
//! `field` patterns both match wins; with no match the defaults apply
//! (and defaults are advisory — `hard = false`).
//!
//! ## Records
//!
//! A bench record is the repo's `BENCH_*.json` shape: a flat JSON
//! object whose `"bench"` string names it and whose top-level finite
//! numeric fields are candidates for gating. Profiles gate through
//! [`record_from_experiment`], which reduces an experiment to its
//! per-metric program totals — stored aggregates, so building the
//! record faults nothing on a lazily opened database.

use callpath_core::experiment::Experiment;
use callpath_core::jsonval::{self, obj, Json};
use callpath_core::metrics::ColumnFlavor;

use crate::rex::Rex;
use crate::{finite, fmt_num};
use std::path::Path;

/// Longest accepted policy file, in bytes.
pub const MAX_POLICY: usize = 64 * 1024;
/// Longest accepted bench record file, in bytes.
const MAX_RECORD: usize = 4 * 1024 * 1024;

/// One policy rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Regex over record names.
    pub bench: Rex,
    /// Regex over field names.
    pub field: Rex,
    /// Allowed regression, percent.
    pub tolerance_pct: f64,
    /// Regression past tolerance fails the gate (vs advisory).
    pub hard: bool,
}

/// A parsed gate policy.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Default allowed regression, percent.
    pub default_tolerance_pct: f64,
    /// Which numeric fields are gated at all.
    pub fields: Rex,
    /// Override rules, in file order.
    pub rules: Vec<Rule>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            default_tolerance_pct: 10.0,
            // Timing fields of a BENCH record, and the "<metric> total"
            // fields a profile database reduces to.
            fields: Rex::compile("_(ms|ns)$| total$").expect("default field pattern"),
            rules: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum TomlVal {
    Num(f64),
    Str(String),
    Bool(bool),
}

fn parse_toml_value(raw: &str, line_no: usize) -> Result<TomlVal, String> {
    let raw = raw.trim();
    if raw == "true" {
        return Ok(TomlVal::Bool(true));
    }
    if raw == "false" {
        return Ok(TomlVal::Bool(false));
    }
    if let Some(rest) = raw.strip_prefix('"') {
        // A simple quoted string: backslash escapes for `\"` and `\\`.
        let mut out = String::new();
        let mut chars = rest.chars();
        loop {
            match chars.next() {
                None => return Err(format!("line {line_no}: unterminated string")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    _ => return Err(format!("line {line_no}: invalid escape")),
                },
                Some(c) => out.push(c),
            }
        }
        let rest: String = chars.collect();
        if !rest.trim().is_empty() && !rest.trim_start().starts_with('#') {
            return Err(format!("line {line_no}: trailing data after string"));
        }
        return Ok(TomlVal::Str(out));
    }
    // A number; strip a trailing comment first.
    let raw = raw.split('#').next().unwrap_or("").trim();
    match raw.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(TomlVal::Num(n)),
        _ => Err(format!("line {line_no}: invalid value '{raw}'")),
    }
}

/// Parse a policy file (the TOML subset described in the module docs).
/// Unknown tables and keys are errors — a typo in a policy must not
/// silently disable a gate.
pub fn parse_policy(text: &str) -> Result<Policy, String> {
    if text.len() > MAX_POLICY {
        return Err(format!(
            "policy longer than {MAX_POLICY} bytes ({})",
            text.len()
        ));
    }
    #[derive(PartialEq)]
    enum Section {
        None,
        Defaults,
        Rule,
    }
    struct PendingRule {
        bench: Option<Rex>,
        field: Option<Rex>,
        tolerance_pct: Option<f64>,
        hard: bool,
        line: usize,
    }
    let mut policy = Policy::default();
    let mut section = Section::None;
    let mut pending: Option<PendingRule> = None;
    let finish = |pending: &mut Option<PendingRule>, policy: &mut Policy| -> Result<(), String> {
        if let Some(p) = pending.take() {
            policy.rules.push(Rule {
                bench: p
                    .bench
                    .ok_or_else(|| format!("line {}: [[rule]] missing 'bench'", p.line))?,
                field: p
                    .field
                    .ok_or_else(|| format!("line {}: [[rule]] missing 'field'", p.line))?,
                tolerance_pct: p.tolerance_pct.unwrap_or(policy.default_tolerance_pct),
                hard: p.hard,
            });
        }
        Ok(())
    };
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[defaults]" {
            finish(&mut pending, &mut policy)?;
            section = Section::Defaults;
            continue;
        }
        if line == "[[rule]]" {
            finish(&mut pending, &mut policy)?;
            section = Section::Rule;
            pending = Some(PendingRule {
                bench: None,
                field: None,
                tolerance_pct: None,
                hard: false,
                line: line_no,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {line_no}: unknown table {line}"));
        }
        let Some((key, raw)) = line.split_once('=') else {
            return Err(format!("line {line_no}: expected 'key = value'"));
        };
        let key = key.trim();
        let val = parse_toml_value(raw, line_no)?;
        let compile = |v: &TomlVal| -> Result<Rex, String> {
            match v {
                TomlVal::Str(s) => {
                    Rex::compile(s).map_err(|e| format!("line {line_no}: bad pattern: {e}"))
                }
                _ => Err(format!("line {line_no}: '{key}' must be a string")),
            }
        };
        let as_num = |v: &TomlVal| -> Result<f64, String> {
            match v {
                TomlVal::Num(n) => Ok(*n),
                _ => Err(format!("line {line_no}: '{key}' must be a number")),
            }
        };
        match (&section, key) {
            (Section::Defaults, "tolerance_pct") => policy.default_tolerance_pct = as_num(&val)?,
            (Section::Defaults, "fields") => policy.fields = compile(&val)?,
            (Section::Rule, "bench") => {
                pending.as_mut().expect("in rule").bench = Some(compile(&val)?)
            }
            (Section::Rule, "field") => {
                pending.as_mut().expect("in rule").field = Some(compile(&val)?)
            }
            (Section::Rule, "tolerance_pct") => {
                pending.as_mut().expect("in rule").tolerance_pct = Some(as_num(&val)?)
            }
            (Section::Rule, "hard") => match val {
                TomlVal::Bool(b) => pending.as_mut().expect("in rule").hard = b,
                _ => return Err(format!("line {line_no}: 'hard' must be a boolean")),
            },
            (Section::None, _) => {
                return Err(format!("line {line_no}: key outside any table"));
            }
            (_, other) => return Err(format!("line {line_no}: unknown key '{other}'")),
        }
    }
    finish(&mut pending, &mut policy)?;
    Ok(policy)
}

/// One named record: a flat list of numeric fields.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Record name (the `"bench"` field, or the file stem).
    pub name: String,
    /// Top-level finite numeric fields, in source order.
    pub fields: Vec<(String, f64)>,
}

fn record_from_json(name_fallback: &str, text: &str) -> Result<BenchRecord, String> {
    let v = jsonval::parse(text)?;
    let Json::Obj(members) = &v else {
        return Err("bench record is not a JSON object".into());
    };
    let name = v
        .get("bench")
        .and_then(Json::as_str)
        .unwrap_or(name_fallback)
        .to_owned();
    let fields = members
        .iter()
        .filter_map(|(k, val)| match val {
            Json::Num(n) if n.is_finite() => Some((k.clone(), *n)),
            _ => None,
        })
        .collect();
    Ok(BenchRecord { name, fields })
}

/// Load bench records from `path`: either one `*.json` file or a
/// directory scanned for `BENCH_*.json` (sorted by file name for
/// determinism).
pub fn load_bench_records(path: &Path) -> Result<Vec<BenchRecord>, String> {
    let read = |p: &Path| -> Result<String, String> {
        let meta = std::fs::metadata(p).map_err(|e| format!("{}: {e}", p.display()))?;
        if meta.len() > MAX_RECORD as u64 {
            return Err(format!(
                "{}: record larger than {MAX_RECORD} bytes",
                p.display()
            ));
        }
        std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))
    };
    let stem = |p: &Path| {
        p.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".to_owned())
    };
    if path.is_dir() {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .map(|n| {
                        let n = n.to_string_lossy();
                        n.starts_with("BENCH_") && n.ends_with(".json")
                    })
                    .unwrap_or(false)
            })
            .collect();
        files.sort();
        let mut out = Vec::new();
        for f in files {
            out.push(
                record_from_json(&stem(&f), &read(&f)?)
                    .map_err(|e| format!("{}: {e}", f.display()))?,
            );
        }
        Ok(out)
    } else {
        Ok(vec![record_from_json(&stem(path), &read(path)?)
            .map_err(|e| format!("{}: {e}", path.display()))?])
    }
}

/// Reduce an experiment to a gateable record: one `"<metric> total"
/// field per raw metric, from the stored per-column aggregates (no
/// column is faulted on a lazily opened database).
pub fn record_from_experiment(name: &str, exp: &Experiment) -> BenchRecord {
    let mut fields = Vec::new();
    for c in exp.columns.columns() {
        let desc = exp.columns.desc(c);
        if let ColumnFlavor::Inclusive(m) = desc.flavor {
            fields.push((format!("{} total", exp.raw.desc(m).name), exp.aggregate(c)));
        }
    }
    BenchRecord {
        name: name.to_owned(),
        fields,
    }
}

/// Per-row outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowVerdict {
    /// Within tolerance.
    Pass,
    /// Past tolerance on an advisory rule.
    Advisory,
    /// Past tolerance on a hard rule.
    Fail,
}

impl RowVerdict {
    /// Stable uppercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            RowVerdict::Pass => "PASS",
            RowVerdict::Advisory => "ADVISORY",
            RowVerdict::Fail => "FAIL",
        }
    }
}

/// One gated field.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Record name.
    pub bench: String,
    /// Field name.
    pub field: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// `(candidate - baseline) / baseline`, percent (capped when the
    /// baseline is zero).
    pub delta_pct: f64,
    /// Tolerance applied.
    pub tolerance_pct: f64,
    /// Whether a hard rule governed this row.
    pub hard: bool,
    /// Outcome.
    pub verdict: RowVerdict,
}

/// The gate report.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// All gated rows, record order then field order.
    pub rows: Vec<GateRow>,
    /// Records present on only one side (informational).
    pub missing: Vec<String>,
    /// True when any row failed hard.
    pub failed: bool,
}

impl GateReport {
    /// Count rows with the given verdict.
    pub fn count(&self, v: RowVerdict) -> usize {
        self.rows.iter().filter(|r| r.verdict == v).count()
    }

    /// Deterministic human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:<20} {:>12} {:>12} {:>9} {:>7}  verdict",
            "bench", "field", "baseline", "candidate", "delta", "tol"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<24} {:<20} {:>12} {:>12} {:>8}% {:>6}%  {}{}",
                r.bench,
                r.field,
                fmt_num(r.baseline),
                fmt_num(r.candidate),
                fmt_num(r.delta_pct),
                fmt_num(r.tolerance_pct),
                r.verdict.as_str(),
                if r.hard && r.verdict != RowVerdict::Pass {
                    " (hard)"
                } else {
                    ""
                }
            );
        }
        for m in &self.missing {
            let _ = writeln!(out, "note: {m}");
        }
        let _ = writeln!(
            out,
            "gate: {} rows, {} pass, {} advisory, {} fail -> {}",
            self.rows.len(),
            self.count(RowVerdict::Pass),
            self.count(RowVerdict::Advisory),
            self.count(RowVerdict::Fail),
            if self.failed { "FAIL" } else { "PASS" }
        );
        out
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("failed", Json::Bool(self.failed)),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("bench", Json::Str(r.bench.clone())),
                                ("field", Json::Str(r.field.clone())),
                                ("baseline", Json::Num(finite(r.baseline))),
                                ("candidate", Json::Num(finite(r.candidate))),
                                ("delta_pct", Json::Num(finite(r.delta_pct))),
                                ("tolerance_pct", Json::Num(finite(r.tolerance_pct))),
                                ("hard", Json::Bool(r.hard)),
                                ("verdict", Json::Str(r.verdict.as_str().to_owned())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "missing",
                Json::Arr(self.missing.iter().cloned().map(Json::Str).collect()),
            ),
        ])
    }
}

/// Gate `candidate` against `baseline` under `policy`. Records pair by
/// name; fields pair by name within a pair and gate only if the policy
/// `fields` pattern matches. Deterministic: rows appear in candidate
/// record order, then baseline field order.
pub fn gate_records(
    baseline: &[BenchRecord],
    candidate: &[BenchRecord],
    policy: &Policy,
) -> GateReport {
    let _span = callpath_obs::span("analyze.gate");
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for cand in candidate {
        let Some(base) = baseline.iter().find(|b| b.name == cand.name) else {
            missing.push(format!("'{}' has no baseline record", cand.name));
            continue;
        };
        for (field, bval) in &base.fields {
            if !policy.fields.is_match(field) {
                continue;
            }
            let Some(&(_, cval)) = cand.fields.iter().find(|(f, _)| f == field) else {
                missing.push(format!("'{}' lost field '{}'", cand.name, field));
                continue;
            };
            // Last matching rule wins; defaults otherwise.
            let rule = policy
                .rules
                .iter()
                .rev()
                .find(|r| r.bench.is_match(&cand.name) && r.field.is_match(field));
            let (tolerance_pct, hard) = rule
                .map(|r| (r.tolerance_pct, r.hard))
                .unwrap_or((policy.default_tolerance_pct, false));
            let delta_pct = if *bval != 0.0 {
                (cval - bval) / bval * 100.0
            } else if cval == 0.0 {
                0.0
            } else {
                1e6
            };
            let regressed = delta_pct > tolerance_pct;
            let verdict = if !regressed {
                RowVerdict::Pass
            } else if hard {
                RowVerdict::Fail
            } else {
                RowVerdict::Advisory
            };
            rows.push(GateRow {
                bench: cand.name.clone(),
                field: field.clone(),
                baseline: *bval,
                candidate: cval,
                delta_pct,
                tolerance_pct,
                hard,
                verdict,
            });
        }
    }
    for base in baseline {
        if !candidate.iter().any(|c| c.name == base.name) {
            missing.push(format!("'{}' has no candidate record", base.name));
        }
    }
    let failed = rows.iter().any(|r| r.verdict == RowVerdict::Fail);
    GateReport {
        rows,
        missing,
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: &str = r#"
# comment
[defaults]
tolerance_pct = 10.0
fields = "_(ms|ns)$"

[[rule]]
bench = "nav"
field = "^p95_ms$"
tolerance_pct = 25.0
hard = true
"#;

    fn rec(name: &str, fields: &[(&str, f64)]) -> BenchRecord {
        BenchRecord {
            name: name.to_owned(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn policy_parses() {
        let p = parse_policy(POLICY).unwrap();
        assert_eq!(p.default_tolerance_pct, 10.0);
        assert_eq!(p.rules.len(), 1);
        assert!(p.rules[0].hard);
        assert_eq!(p.rules[0].tolerance_pct, 25.0);
        assert!(p.fields.is_match("open_ms"));
        assert!(!p.fields.is_match("cores"));
    }

    #[test]
    fn hostile_policies_are_errors() {
        for bad in [
            "tolerance_pct = 1",          // key outside a table
            "[defaults]\nnope = 1",       // unknown key
            "[weird]",                    // unknown table
            "[defaults]\nfields = 5",     // wrong type
            "[defaults]\nfields = \"(\"", // bad pattern
            "[[rule]]\nhard = true",      // missing bench/field
            "[[rule]]\nbench = \"a",      // unterminated string
            "[defaults]\ntolerance_pct = inf",
            "[defaults]\ntolerance_pct",
        ] {
            assert!(parse_policy(bad).is_err(), "{bad:?} must not parse");
        }
        let long = "#".repeat(MAX_POLICY + 1);
        assert!(parse_policy(&long).is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_past_a_hard_rule() {
        let p = parse_policy(POLICY).unwrap();
        let base = vec![rec(
            "nav",
            &[("p95_ms", 10.0), ("open_ms", 5.0), ("cores", 1.0)],
        )];
        // p95 +20% (within the 25% hard rule), open +50% (advisory).
        let cand_ok = vec![rec(
            "nav",
            &[("p95_ms", 12.0), ("open_ms", 7.5), ("cores", 1.0)],
        )];
        let report = gate_records(&base, &cand_ok, &p);
        assert!(!report.failed, "{}", report.render());
        assert_eq!(report.count(RowVerdict::Advisory), 1);
        assert_eq!(report.rows.len(), 2, "cores is not a gated field");

        // p95 +30%: past the hard rule.
        let cand_bad = vec![rec(
            "nav",
            &[("p95_ms", 13.0), ("open_ms", 5.0), ("cores", 1.0)],
        )];
        let report = gate_records(&base, &cand_bad, &p);
        assert!(report.failed);
        assert_eq!(report.count(RowVerdict::Fail), 1);
        let json = report.to_json().to_json();
        assert!(json.contains("\"failed\":true"), "{json}");
    }

    #[test]
    fn improvements_always_pass() {
        let p = Policy::default();
        let base = vec![rec("b", &[("t_ms", 10.0)])];
        let cand = vec![rec("b", &[("t_ms", 1.0)])];
        let report = gate_records(&base, &cand, &p);
        assert!(!report.failed);
        assert_eq!(report.rows[0].verdict, RowVerdict::Pass);
        assert_eq!(report.rows[0].delta_pct, -90.0);
    }

    #[test]
    fn missing_counterparts_are_noted_not_fatal() {
        let p = Policy::default();
        let base = vec![rec("only_base", &[("t_ms", 1.0)])];
        let cand = vec![rec("only_cand", &[("t_ms", 1.0)])];
        let report = gate_records(&base, &cand, &p);
        assert!(!report.failed);
        assert_eq!(report.rows.len(), 0);
        assert_eq!(report.missing.len(), 2);
    }

    #[test]
    fn zero_baseline_regression_is_capped_not_infinite() {
        let p = Policy::default();
        let base = vec![rec("b", &[("t_ms", 0.0)])];
        let cand = vec![rec("b", &[("t_ms", 3.0)])];
        let report = gate_records(&base, &cand, &p);
        assert_eq!(report.rows[0].delta_pct, 1e6);
        assert_eq!(report.rows[0].verdict, RowVerdict::Advisory);
    }

    #[test]
    fn bench_records_parse_the_repo_shape() {
        let r = record_from_json(
            "fallback",
            r#"{"bench":"session_nav","cores":1,"p50_ms":0.5,"p95_ms":1.25,"mode":"seq","speedup":null}"#,
        )
        .unwrap();
        assert_eq!(r.name, "session_nav");
        assert_eq!(
            r.fields,
            vec![
                ("cores".to_owned(), 1.0),
                ("p50_ms".to_owned(), 0.5),
                ("p95_ms".to_owned(), 1.25)
            ]
        );
        assert!(record_from_json("x", "[1,2]").is_err());
        assert!(record_from_json("x", "{").is_err());
    }
}
