//! The query language: typed predicate expressions over a CCT and its
//! presentation columns, in the spirit of hatchet's dataframe filters.
//!
//! ## Syntax
//!
//! ```text
//! query  := or
//! or     := and ( 'or' and )*
//! and    := unary ( 'and' unary )*
//! unary  := 'not' unary | 'subtree' '(' or ')' | '(' or ')' | atom
//! atom   := field '~' "regex"            field := proc|module|file|label
//!         | colref cmp number [ '%' ]    cmp   := > | >= | < | <=
//! colref := incl("metric") | excl("metric") | col("column name")
//! ```
//!
//! `incl("cycles")` names the presentation column `cycles (I)`,
//! `excl(…)` the `(E)` twin, `col(…)` any column by its exact name
//! (derived columns, ensemble stat columns like `cycles mean (I)`).
//! A trailing `%` compares against that percentage of the column's
//! whole-program aggregate instead of an absolute value, e.g.
//! `incl("cycles") >= 10%`. `subtree(q)` matches every node whose
//! subtree (itself included) contains a match of `q`.
//!
//! ## Laziness
//!
//! Evaluation reads *only* the presentation columns an atom names —
//! `ColumnSet::find` does not fault, `ColumnSet::get` faults exactly
//! the named column, and aggregates are stored totals. The raw-metric
//! side of a lazily opened database is never touched, which is what the
//! lazy-fault accounting tests pin.
//!
//! ## Determinism
//!
//! Leaf predicates are evaluated tile-parallel over
//! [`callpath_core::chunked::chunked_map`]; the per-node boolean
//! outputs are position-stable, so results are bit-identical across
//! thread counts. Hits are ordered by score descending with node id as
//! the tie-break.

use crate::rex::Rex;
use callpath_core::cct::Cct;
use callpath_core::chunked::chunked_map;
use callpath_core::experiment::Experiment;
use callpath_core::ids::{ColumnId, NodeId};
use callpath_core::jsonval::{obj, Json};
use callpath_core::metrics::ColumnSet;
use callpath_core::scope::ScopeKind;

/// Longest accepted query text, in bytes.
pub const MAX_QUERY: usize = 8 * 1024;
/// Deepest accepted predicate nesting.
const MAX_DEPTH: u32 = 64;

/// Which textual attribute of a node a `~` predicate matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Procedure name of a frame (inlined frames included); non-frames
    /// never match.
    Proc,
    /// Load-module name of a dynamic frame.
    Module,
    /// Source file: a frame's definition file, a loop's header file, a
    /// statement's file.
    File,
    /// The rendered row label (what the viewer shows).
    Label,
}

/// How an atom names a column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColSel {
    /// `incl("m")` → column `m (I)`.
    Incl(String),
    /// `excl("m")` → column `m (E)`.
    Excl(String),
    /// `col("name")` → exact column name.
    Named(String),
}

impl ColSel {
    /// Resolve against a column set **without faulting** anything.
    pub fn resolve(&self, columns: &ColumnSet) -> Result<ColumnId, String> {
        let name = match self {
            ColSel::Incl(m) => format!("{m} (I)"),
            ColSel::Excl(m) => format!("{m} (E)"),
            ColSel::Named(n) => n.clone(),
        };
        columns
            .find(&name)
            .ok_or_else(|| format!("unknown column '{name}'"))
    }
}

/// Comparison operator of a metric atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl Cmp {
    fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
        }
    }
}

/// Right-hand side of a metric atom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rhs {
    /// An absolute value.
    Const(f64),
    /// `N%`: N percent of the column's whole-program aggregate.
    PercentOfAgg(f64),
}

/// A parsed predicate.
#[derive(Debug, Clone)]
pub enum Pred {
    /// `field ~ "regex"`.
    Match {
        /// The attribute matched.
        field: Field,
        /// Compiled pattern.
        rex: Rex,
    },
    /// `colref cmp rhs`.
    Metric {
        /// Column selector.
        col: ColSel,
        /// Operator.
        cmp: Cmp,
        /// Threshold.
        rhs: Rhs,
    },
    /// Both sides hold.
    And(Box<Pred>, Box<Pred>),
    /// Either side holds.
    Or(Box<Pred>, Box<Pred>),
    /// The side does not hold.
    Not(Box<Pred>),
    /// The node's subtree (itself included) contains a match.
    Subtree(Box<Pred>),
}

/// A parsed query: the predicate plus its source text.
#[derive(Debug, Clone)]
pub struct Query {
    /// Root predicate.
    pub pred: Pred,
    /// Source text as given.
    pub text: String,
}

/// A parse failure: byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Approximate byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query error at byte {}: {}", self.pos, self.message)
    }
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    Pct,
    LParen,
    RParen,
    Tilde,
    Cmp(Cmp),
}

fn lex(text: &str) -> Result<Vec<(usize, Tok)>, QueryError> {
    let err = |pos: usize, m: &str| QueryError {
        pos,
        message: m.to_owned(),
    };
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            b')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            b'~' => {
                toks.push((i, Tok::Tilde));
                i += 1;
            }
            b'%' => {
                toks.push((i, Tok::Pct));
                i += 1;
            }
            b'>' | b'<' => {
                let cmp = if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    if b == b'>' {
                        Cmp::Ge
                    } else {
                        Cmp::Le
                    }
                } else {
                    i += 1;
                    if b == b'>' {
                        Cmp::Gt
                    } else {
                        Cmp::Lt
                    }
                };
                toks.push((i, Tok::Cmp(cmp)));
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    let Some(&c) = bytes.get(i) else {
                        return Err(err(start, "unterminated string"));
                    };
                    match c {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            // `\"` embeds a quote; every other backslash
                            // passes through to the regex engine so
                            // `label ~ "x\.c"` needs no double-escaping.
                            if bytes.get(i + 1) == Some(&b'"') {
                                s.push('"');
                                i += 2;
                            } else {
                                s.push('\\');
                                i += 1;
                            }
                        }
                        0x00..=0x1f => return Err(err(i, "control byte in string")),
                        _ => {
                            // Copy one UTF-8 scalar.
                            let rest = &text[i..];
                            let c = rest.chars().next().ok_or_else(|| err(i, "bad UTF-8"))?;
                            s.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                toks.push((start, Tok::Str(s)));
            }
            b'0'..=b'9' | b'-' | b'.' => {
                let start = i;
                if b == b'-' {
                    i += 1;
                }
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    i += 1;
                }
                let token = &text[start..i];
                match token.parse::<f64>() {
                    Ok(n) if n.is_finite() => toks.push((start, Tok::Num(n))),
                    _ => return Err(err(start, &format!("invalid number '{token}'"))),
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                {
                    i += 1;
                }
                toks.push((start, Tok::Ident(text[start..i].to_owned())));
            }
            _ => return Err(err(i, &format!("unexpected byte 0x{b:02x}"))),
        }
    }
    Ok(toks)
}

// --------------------------------------------------------------- parser

struct Parser {
    toks: Vec<(usize, Tok)>,
    at: usize,
    end: usize,
}

impl Parser {
    fn pos(&self) -> usize {
        self.toks.get(self.at).map(|(p, _)| *p).unwrap_or(self.end)
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.at).map(|(_, t)| t.clone());
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), QueryError> {
        if self.peek() == Some(want) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn parse_or(&mut self, depth: u32) -> Result<Pred, QueryError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        let mut lhs = self.parse_and(depth)?;
        while matches!(self.peek(), Some(Tok::Ident(w)) if w == "or") {
            self.at += 1;
            let rhs = self.parse_and(depth)?;
            lhs = Pred::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self, depth: u32) -> Result<Pred, QueryError> {
        let mut lhs = self.parse_unary(depth)?;
        while matches!(self.peek(), Some(Tok::Ident(w)) if w == "and") {
            self.at += 1;
            let rhs = self.parse_unary(depth)?;
            lhs = Pred::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self, depth: u32) -> Result<Pred, QueryError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(Tok::Ident(w)) if w == "not" => {
                self.at += 1;
                Ok(Pred::Not(Box::new(self.parse_unary(depth + 1)?)))
            }
            Some(Tok::Ident(w)) if w == "subtree" => {
                self.at += 1;
                self.expect(&Tok::LParen, "'(' after subtree")?;
                let inner = self.parse_or(depth + 1)?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(Pred::Subtree(Box::new(inner)))
            }
            Some(Tok::LParen) => {
                self.at += 1;
                let inner = self.parse_or(depth + 1)?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Pred, QueryError> {
        let at = self.pos();
        let Some(Tok::Ident(head)) = self.bump() else {
            return Err(QueryError {
                pos: at,
                message: "expected a predicate".into(),
            });
        };
        match head.as_str() {
            "proc" | "module" | "file" | "label" => {
                let field = match head.as_str() {
                    "proc" => Field::Proc,
                    "module" => Field::Module,
                    "file" => Field::File,
                    _ => Field::Label,
                };
                self.expect(&Tok::Tilde, "'~' after field")?;
                let pat_at = self.pos();
                let Some(Tok::Str(pat)) = self.bump() else {
                    return Err(QueryError {
                        pos: pat_at,
                        message: "expected a \"pattern\" string".into(),
                    });
                };
                let rex = Rex::compile(&pat).map_err(|m| QueryError {
                    pos: pat_at,
                    message: m,
                })?;
                Ok(Pred::Match { field, rex })
            }
            "incl" | "excl" | "col" => {
                self.expect(&Tok::LParen, "'('")?;
                let name_at = self.pos();
                let Some(Tok::Str(name)) = self.bump() else {
                    return Err(QueryError {
                        pos: name_at,
                        message: "expected a \"column\" string".into(),
                    });
                };
                self.expect(&Tok::RParen, "')'")?;
                let col = match head.as_str() {
                    "incl" => ColSel::Incl(name),
                    "excl" => ColSel::Excl(name),
                    _ => ColSel::Named(name),
                };
                let Some(Tok::Cmp(cmp)) = self.bump() else {
                    return Err(self.err("expected a comparison operator"));
                };
                let num_at = self.pos();
                let Some(Tok::Num(n)) = self.bump() else {
                    return Err(QueryError {
                        pos: num_at,
                        message: "expected a number".into(),
                    });
                };
                let rhs = if self.peek() == Some(&Tok::Pct) {
                    self.at += 1;
                    Rhs::PercentOfAgg(n)
                } else {
                    Rhs::Const(n)
                };
                Ok(Pred::Metric { col, cmp, rhs })
            }
            other => Err(QueryError {
                pos: at,
                message: format!("unknown predicate '{other}'"),
            }),
        }
    }
}

impl Query {
    /// Parse a query; every malformed or oversized input is a
    /// [`QueryError`], never a panic.
    pub fn parse(text: &str) -> Result<Query, QueryError> {
        if text.len() > MAX_QUERY {
            return Err(QueryError {
                pos: MAX_QUERY,
                message: format!("query longer than {MAX_QUERY} bytes ({})", text.len()),
            });
        }
        let toks = lex(text)?;
        if toks.is_empty() {
            return Err(QueryError {
                pos: 0,
                message: "empty query".into(),
            });
        }
        let mut p = Parser {
            toks,
            at: 0,
            end: text.len(),
        };
        let pred = p.parse_or(0)?;
        if p.at != p.toks.len() {
            return Err(p.err("trailing tokens after query"));
        }
        Ok(Query {
            pred,
            text: text.to_owned(),
        })
    }
}

// ------------------------------------------------------------ evaluation

fn field_matches(cct: &Cct, field: Field, rex: &Rex, n: NodeId, buf: &mut String) -> bool {
    let names = &cct.names;
    match (field, cct.kind(n)) {
        (Field::Proc, ScopeKind::Frame { proc, .. })
        | (Field::Proc, ScopeKind::InlinedFrame { proc, .. }) => {
            rex.is_match(names.proc_name(proc))
        }
        (Field::Proc, _) => false,
        (Field::Module, ScopeKind::Frame { module, .. }) => rex.is_match(names.module_name(module)),
        (Field::Module, _) => false,
        (Field::File, ScopeKind::Frame { def, .. })
        | (Field::File, ScopeKind::InlinedFrame { def, .. }) => {
            rex.is_match(names.file_name(def.file))
        }
        (Field::File, ScopeKind::Loop { header }) => rex.is_match(names.file_name(header.file)),
        (Field::File, ScopeKind::Stmt { loc }) => rex.is_match(names.file_name(loc.file)),
        (Field::File, ScopeKind::Root) => false,
        (Field::Label, kind) => {
            buf.clear();
            kind.write_label(names, buf);
            rex.is_match(buf)
        }
    }
}

/// Evaluate `pred` over every CCT node of `exp`, returning one boolean
/// per node (arena order). Only the columns named by metric atoms are
/// read — a lazily opened database faults exactly those. `threads`
/// follows the [`callpath_core::chunked::resolve_threads`] convention
/// (0 = auto/`CALLPATH_THREADS`).
pub fn eval_mask(exp: &Experiment, pred: &Pred, threads: usize) -> Result<Vec<bool>, String> {
    let n = exp.cct.len();
    let ids: Vec<u32> = (0..n as u32).collect();
    eval_pred(exp, pred, &ids, threads)
}

fn eval_pred(
    exp: &Experiment,
    pred: &Pred,
    ids: &[u32],
    threads: usize,
) -> Result<Vec<bool>, String> {
    match pred {
        Pred::Match { field, rex } => Ok(chunked_map(ids, threads, |_ci, chunk| {
            let mut out = Vec::with_capacity(chunk.len());
            let mut buf = String::new();
            for &n in chunk {
                out.push(field_matches(&exp.cct, *field, rex, NodeId(n), &mut buf));
            }
            out
        })
        .concat()),
        Pred::Metric { col, cmp, rhs } => {
            let c = col.resolve(&exp.columns)?;
            let threshold = match rhs {
                Rhs::Const(v) => *v,
                Rhs::PercentOfAgg(p) => p / 100.0 * exp.aggregate(c),
            };
            Ok(chunked_map(ids, threads, |_ci, chunk| {
                chunk
                    .iter()
                    .map(|&n| cmp.eval(exp.columns.get(c, n), threshold))
                    .collect::<Vec<bool>>()
            })
            .concat())
        }
        Pred::And(a, b) => {
            let ma = eval_pred(exp, a, ids, threads)?;
            let mb = eval_pred(exp, b, ids, threads)?;
            Ok(ma.iter().zip(&mb).map(|(&x, &y)| x && y).collect())
        }
        Pred::Or(a, b) => {
            let ma = eval_pred(exp, a, ids, threads)?;
            let mb = eval_pred(exp, b, ids, threads)?;
            Ok(ma.iter().zip(&mb).map(|(&x, &y)| x || y).collect())
        }
        Pred::Not(a) => Ok(eval_pred(exp, a, ids, threads)?
            .into_iter()
            .map(|x| !x)
            .collect()),
        Pred::Subtree(a) => {
            let mut mask = eval_pred(exp, a, ids, threads)?;
            // Arena order guarantees parent < child, so one reverse pass
            // propagates "subtree contains a match" transitively.
            for i in (1..mask.len()).rev() {
                if mask[i] {
                    if let Some(p) = exp.cct.parent(NodeId(i as u32)) {
                        mask[p.0 as usize] = true;
                    }
                }
            }
            Ok(mask)
        }
    }
}

/// Root-to-node labels of `n`'s calling context, the synthetic root
/// excluded — the evidence-path rendering shared with the detectors.
pub fn path_labels(exp: &Experiment, n: NodeId) -> Vec<String> {
    let mut path: Vec<NodeId> = exp.cct.ancestors(n).collect();
    path.reverse();
    path.push(n);
    path.iter()
        .filter(|&&p| p != exp.cct.root())
        .map(|&p| exp.cct.kind(p).label(&exp.cct.names))
        .collect()
}

/// One matched node.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHit {
    /// CCT node id.
    pub node: u32,
    /// Score (value of the score column at this node).
    pub score: f64,
    /// Root-to-node labels (root excluded).
    pub path: Vec<String>,
}

/// The result of [`run_query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Query text.
    pub query: String,
    /// Name of the score column (empty if the experiment has none).
    pub score_col: String,
    /// Total number of matched nodes (before `top` truncation).
    pub matched: usize,
    /// Total number of CCT nodes evaluated.
    pub nodes: usize,
    /// Top hits, score descending, node id ascending on ties.
    pub hits: Vec<QueryHit>,
}

impl QueryReport {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("query", Json::Str(self.query.clone())),
            ("score_col", Json::Str(self.score_col.clone())),
            ("matched", Json::Num(self.matched as f64)),
            ("nodes", Json::Num(self.nodes as f64)),
            (
                "hits",
                Json::Arr(
                    self.hits
                        .iter()
                        .map(|h| {
                            obj(vec![
                                ("node", Json::Num(h.node as f64)),
                                ("score", Json::Num(crate::finite(h.score))),
                                (
                                    "path",
                                    Json::Arr(h.path.iter().cloned().map(Json::Str).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deterministic human-readable form.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query matched {} of {} nodes (score: {})",
            self.matched,
            self.nodes,
            if self.score_col.is_empty() {
                "none"
            } else {
                &self.score_col
            }
        );
        for h in &self.hits {
            let _ = writeln!(
                out,
                "  {:>12}  {}",
                crate::fmt_num(h.score),
                if h.path.is_empty() {
                    "<program root>".to_owned()
                } else {
                    h.path.join(" > ")
                }
            );
        }
        out
    }
}

/// Parse and evaluate `text` over `exp`, scoring matches by
/// `score_col` (an exact column name; defaults to the first column) and
/// keeping the `top` best.
pub fn run_query(
    exp: &Experiment,
    text: &str,
    score_col: Option<&str>,
    top: usize,
    threads: usize,
) -> Result<QueryReport, String> {
    let _span = callpath_obs::span("analyze.query");
    let q = Query::parse(text).map_err(|e| e.to_string())?;
    let mask = eval_mask(exp, &q.pred, threads)?;
    let score_c = match score_col {
        Some(name) => Some(
            exp.columns
                .find(name)
                .ok_or_else(|| format!("unknown score column '{name}'"))?,
        ),
        None => {
            if exp.columns.column_count() > 0 {
                Some(ColumnId(0))
            } else {
                None
            }
        }
    };
    let mut scored: Vec<(u32, f64)> = mask
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(n, _)| {
            let n = n as u32;
            (n, score_c.map(|c| exp.columns.get(c, n)).unwrap_or(0.0))
        })
        .collect();
    let matched = scored.len();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(top);
    let hits = scored
        .into_iter()
        .map(|(n, score)| QueryHit {
            node: n,
            score,
            path: path_labels(exp, NodeId(n)),
        })
        .collect();
    Ok(QueryReport {
        query: text.to_owned(),
        score_col: score_c
            .map(|c| exp.columns.desc(c).name.clone())
            .unwrap_or_default(),
        matched,
        nodes: exp.cct.len(),
        hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_core::metrics::{MetricDesc, RawMetrics, StorageKind};
    use callpath_core::names::{NameTable, SourceLoc};

    /// main -> { fast -> stmt, slow -> loop -> stmt } with cycles.
    fn sample() -> Experiment {
        let mut names = NameTable::new();
        let file = names.file("x.c");
        let module = names.module("x");
        let p_main = names.proc("main");
        let p_fast = names.proc("fast");
        let p_slow = names.proc("slow_solve");
        let mut cct = Cct::new(names);
        let root = cct.root();
        let fr = |proc, line: u32, cs: Option<u32>| ScopeKind::Frame {
            proc,
            module,
            def: SourceLoc::new(file, line),
            call_site: cs.map(|l| SourceLoc::new(file, l)),
        };
        let main = cct.add_child(root, fr(p_main, 1, None));
        let fast = cct.add_child(main, fr(p_fast, 10, Some(2)));
        let slow = cct.add_child(main, fr(p_slow, 20, Some(3)));
        let sf = cct.add_child(
            fast,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 11),
            },
        );
        let lp = cct.add_child(
            slow,
            ScopeKind::Loop {
                header: SourceLoc::new(file, 21),
            },
        );
        let ss = cct.add_child(
            lp,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 22),
            },
        );
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1.0));
        raw.add_cost(cyc, sf, 100.0);
        raw.add_cost(cyc, ss, 900.0);
        Experiment::build(cct, raw, StorageKind::Dense)
    }

    fn mask(exp: &Experiment, text: &str) -> Vec<bool> {
        let q = Query::parse(text).unwrap();
        eval_mask(exp, &q.pred, 1).unwrap()
    }

    #[test]
    fn proc_regex_hits_frames_only() {
        let exp = sample();
        let m = mask(&exp, "proc ~ \"^slow\"");
        let hits: Vec<usize> = m
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(
            exp.cct.kind(NodeId(hits[0] as u32)).label(&exp.cct.names),
            "slow_solve"
        );
    }

    #[test]
    fn metric_threshold_absolute_and_percent() {
        let exp = sample();
        // Inclusive cycles >= 900 : root, main, slow, loop, stmt = 5 nodes.
        let m = mask(&exp, "incl(\"cycles\") >= 900");
        assert_eq!(m.iter().filter(|&&b| b).count(), 5);
        // >= 90% of the program total — the same five nodes.
        let mp = mask(&exp, "incl(\"cycles\") >= 90%");
        assert_eq!(m, mp);
    }

    #[test]
    fn composition_matches_naive() {
        let exp = sample();
        let a = mask(&exp, "proc ~ \"a\"");
        let b = mask(&exp, "incl(\"cycles\") > 100");
        let and = mask(&exp, "proc ~ \"a\" and incl(\"cycles\") > 100");
        let or = mask(&exp, "proc ~ \"a\" or incl(\"cycles\") > 100");
        let not = mask(&exp, "not proc ~ \"a\"");
        for i in 0..a.len() {
            assert_eq!(and[i], a[i] && b[i]);
            assert_eq!(or[i], a[i] || b[i]);
            assert_eq!(not[i], !a[i]);
        }
    }

    #[test]
    fn subtree_marks_ancestors_of_matches() {
        let exp = sample();
        // Nodes whose subtree contains the slow frame: root, main, slow.
        let m = mask(&exp, "subtree(proc ~ \"^slow\")");
        let naive: Vec<bool> = exp
            .cct
            .all_nodes()
            .map(|n| {
                exp.cct.preorder(n).any(|d| {
                    matches!(exp.cct.kind(d), ScopeKind::Frame { proc, .. }
                        if exp.cct.names.proc_name(proc) == "slow_solve")
                })
            })
            .collect();
        assert_eq!(m, naive);
    }

    #[test]
    fn run_query_orders_by_score() {
        let exp = sample();
        let r = run_query(&exp, "label ~ \"x\\.c\"", Some("cycles (I)"), 2, 1).unwrap();
        assert_eq!(r.score_col, "cycles (I)");
        assert!(r.matched >= 2);
        assert_eq!(r.hits.len(), 2);
        assert!(r.hits[0].score >= r.hits[1].score);
        assert!(!r.hits[0].path.is_empty());
    }

    #[test]
    fn unknown_column_is_an_error_not_a_panic() {
        let exp = sample();
        let q = Query::parse("incl(\"nope\") > 1").unwrap();
        assert!(eval_mask(&exp, &q.pred, 1).is_err());
        assert!(run_query(&exp, "proc ~ \"m\"", Some("nope"), 5, 1).is_err());
    }

    #[test]
    fn hostile_queries_are_errors() {
        for bad in [
            "",
            "proc ~",
            "proc ~ unquoted",
            "proc ~ \"(\"",
            "incl(\"c\") >",
            "incl(\"c\") > 1 2",
            "and and",
            "subtree(",
            "proc ~ \"a\" garbage",
            "frobnicate ~ \"a\"",
            "incl(\"c\") = 1",
            "incl(\"c\") > NaN",
        ] {
            assert!(Query::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let deep = format!("{}proc ~ \"a\"{}", "(".repeat(100), ")".repeat(100));
        assert!(Query::parse(&deep).is_err(), "depth bomb rejected");
        let long = format!("proc ~ \"{}\"", "a".repeat(MAX_QUERY));
        assert!(Query::parse(&long).is_err(), "oversized query rejected");
    }

    #[test]
    fn thread_counts_do_not_change_masks() {
        let exp = sample();
        let q = "subtree(incl(\"cycles\") > 50) and not proc ~ \"fast\" or label ~ \":2\"";
        let base = {
            let q = Query::parse(q).unwrap();
            eval_mask(&exp, &q.pred, 1).unwrap()
        };
        for t in [2, 4, 8] {
            let qq = Query::parse(q).unwrap();
            assert_eq!(eval_mask(&exp, &qq.pred, t).unwrap(), base, "threads={t}");
        }
    }
}
