//! The format-independent database model: everything needed to
//! reconstruct an [`Experiment`], and nothing that can be recomputed.

use callpath_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Database error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbError {
    /// What went wrong.
    pub message: String,
}

impl DbError {
    /// Wrap a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DbError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "experiment db error: {}", self.message)
    }
}

impl std::error::Error for DbError {}

/// A CCT node in serialized form. `parent` indices refer to arena order,
/// which always places parents before children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DbScope {
    /// A dynamic procedure frame.
    Frame {
        /// Procedure name index.
        proc: u32,
        /// Load-module name index.
        module: u32,
        /// Defining file index.
        def_file: u32,
        /// First line of the definition.
        def_line: u32,
        /// Call site as (file index, line), absent for top-level frames.
        call_site: Option<(u32, u32)>,
    },
    /// An inlined procedure body.
    Inlined {
        /// Inlined procedure name index.
        proc: u32,
        /// Defining file index.
        def_file: u32,
        /// First line of the definition.
        def_line: u32,
        /// Call-site file index.
        cs_file: u32,
        /// Call-site line.
        cs_line: u32,
    },
    /// A loop, identified by its header location.
    Loop {
        /// Header file index.
        file: u32,
        /// Header line.
        line: u32,
    },
    /// A source statement.
    Stmt {
        /// File index.
        file: u32,
        /// Line number.
        line: u32,
    },
}

/// One serialized CCT node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbNode {
    /// Arena index of the parent (parents always precede children).
    pub parent: u32,
    /// The scope this node represents.
    pub scope: DbScope,
}

/// One serialized raw metric with its sparse costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbMetric {
    /// Metric name, e.g. `PAPI_TOT_CYC`.
    pub name: String,
    /// Display unit.
    pub unit: String,
    /// Sampling period (events per sample).
    pub period: f64,
    /// Sparse direct costs: (node id, value), ascending by node id.
    pub costs: Vec<(u32, f64)>,
}

/// The complete serializable experiment model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbModel {
    /// Procedure names, index = id.
    pub procs: Vec<String>,
    /// File names, index = id.
    pub files: Vec<String>,
    /// Load-module names, index = id.
    pub modules: Vec<String>,
    /// Non-root CCT nodes in arena order (node id = index + 1).
    pub nodes: Vec<DbNode>,
    /// Raw metrics with their costs.
    pub metrics: Vec<DbMetric>,
    /// Derived metric definitions: (column name, formula source).
    pub derived: Vec<(String, String)>,
    /// Storage flavor to rebuild with.
    pub sparse: bool,
}

impl DbModel {
    /// Extract the model from an attributed experiment.
    pub fn from_experiment(exp: &Experiment) -> DbModel {
        let (procs, files, modules, nodes) = topology_parts(&exp.cct);

        let metrics = (0..exp.raw.metric_count())
            .map(|mi| {
                let m = MetricId::from_usize(mi);
                let d = exp.raw.desc(m);
                DbMetric {
                    name: d.name.clone(),
                    unit: d.unit.clone(),
                    period: d.period,
                    costs: exp.raw.column(m).nonzero_sorted().collect(),
                }
            })
            .collect();

        let derived = exp
            .columns
            .descs()
            .iter()
            .filter_map(|d| match &d.flavor {
                ColumnFlavor::Derived { formula } => Some((d.name.clone(), formula.clone())),
                _ => None,
            })
            .collect();

        DbModel {
            procs,
            files,
            modules,
            nodes,
            metrics,
            derived,
            sparse: exp.raw.storage() == StorageKind::Sparse,
        }
    }

    /// Reconstruct just the validated CCT — no metrics recorded, no
    /// attribution. The ensemble builder works from topology plus raw
    /// sparse costs and never needs the presentation columns
    /// [`DbModel::into_experiment`] would compute.
    pub fn build_cct(&self) -> Result<Cct, DbError> {
        build_cct(&self.procs, &self.files, &self.modules, &self.nodes)
    }

    /// Rebuild a fully attributed experiment.
    pub fn into_experiment(self) -> Result<Experiment, DbError> {
        let cct = build_cct(&self.procs, &self.files, &self.modules, &self.nodes)?;

        let storage = if self.sparse {
            StorageKind::Sparse
        } else {
            StorageKind::Dense
        };
        let mut raw = RawMetrics::new(storage);
        let n_nodes = cct.len() as u32;
        for m in &self.metrics {
            let id = raw.add_metric(MetricDesc::new(&m.name, &m.unit, m.period));
            for &(node, v) in &m.costs {
                if node >= n_nodes {
                    return Err(DbError::new(format!(
                        "cost references node {node} beyond CCT size {n_nodes}"
                    )));
                }
                raw.add_cost(id, NodeId(node), v);
            }
        }

        let mut exp = Experiment::build(cct, raw, storage);
        for (name, formula) in &self.derived {
            exp.add_derived(name, formula)
                .map_err(|e| DbError::new(format!("derived metric '{name}': {e}")))?;
        }
        Ok(exp)
    }
}

/// Serialize a CCT's topology half: the three name tables plus node
/// records in arena order — the inverse of [`build_cct`]. Shared by
/// [`DbModel::from_experiment`] and the ensemble writer
/// ([`crate::ens`]), which has a union CCT but no experiment.
pub(crate) fn topology_parts(cct: &Cct) -> (Vec<String>, Vec<String>, Vec<String>, Vec<DbNode>) {
    let names = &cct.names;
    let procs = (0..names.proc_count())
        .map(|i| names.proc_name(ProcId(i as u32)).to_owned())
        .collect();
    let files = (0..names.file_count())
        .map(|i| names.file_name(FileId(i as u32)).to_owned())
        .collect();
    let modules = (0..names.module_count())
        .map(|i| names.module_name(LoadModuleId(i as u32)).to_owned())
        .collect();

    let mut nodes = Vec::with_capacity(cct.len() - 1);
    for n in cct.all_nodes().skip(1) {
        let parent = cct.parent(n).expect("non-root has parent").0;
        let scope = match cct.kind(n) {
            ScopeKind::Root => unreachable!("root is implicit"),
            ScopeKind::Frame {
                proc,
                module,
                def,
                call_site,
            } => DbScope::Frame {
                proc: proc.0,
                module: module.0,
                def_file: def.file.0,
                def_line: def.line,
                call_site: call_site.map(|c| (c.file.0, c.line)),
            },
            ScopeKind::InlinedFrame {
                proc,
                def,
                call_site,
            } => DbScope::Inlined {
                proc: proc.0,
                def_file: def.file.0,
                def_line: def.line,
                cs_file: call_site.file.0,
                cs_line: call_site.line,
            },
            ScopeKind::Loop { header } => DbScope::Loop {
                file: header.file.0,
                line: header.line,
            },
            ScopeKind::Stmt { loc } => DbScope::Stmt {
                file: loc.file.0,
                line: loc.line,
            },
        };
        nodes.push(DbNode { parent, scope });
    }
    (procs, files, modules, nodes)
}

/// Reconstruct a validated [`Cct`] from serialized name tables and node
/// records — the shared topology-decoding half of
/// [`DbModel::into_experiment`], also used by the lazy v2 reader (which
/// decodes topology eagerly but leaves metric columns on disk).
pub(crate) fn build_cct(
    proc_names: &[String],
    file_names: &[String],
    module_names: &[String],
    nodes: &[DbNode],
) -> Result<Cct, DbError> {
    let mut names = NameTable::new();
    let procs: Vec<ProcId> = proc_names.iter().map(|s| names.proc(s)).collect();
    let files: Vec<FileId> = file_names.iter().map(|s| names.file(s)).collect();
    let modules: Vec<LoadModuleId> = module_names.iter().map(|s| names.module(s)).collect();

    let proc_id = |i: u32| -> Result<ProcId, DbError> {
        procs
            .get(i as usize)
            .copied()
            .ok_or_else(|| DbError::new(format!("proc index {i} out of range")))
    };
    let file_id = |i: u32| -> Result<FileId, DbError> {
        files
            .get(i as usize)
            .copied()
            .ok_or_else(|| DbError::new(format!("file index {i} out of range")))
    };
    let module_id = |i: u32| -> Result<LoadModuleId, DbError> {
        modules
            .get(i as usize)
            .copied()
            .ok_or_else(|| DbError::new(format!("module index {i} out of range")))
    };

    let mut cct = Cct::new(names);
    for (i, node) in nodes.iter().enumerate() {
        let id = i as u32 + 1;
        if node.parent >= id {
            return Err(DbError::new(format!(
                "node {id}: parent {} does not precede it",
                node.parent
            )));
        }
        let kind = match &node.scope {
            DbScope::Frame {
                proc,
                module,
                def_file,
                def_line,
                call_site,
            } => ScopeKind::Frame {
                proc: proc_id(*proc)?,
                module: module_id(*module)?,
                def: SourceLoc::new(file_id(*def_file)?, *def_line),
                call_site: match call_site {
                    Some((f, l)) => Some(SourceLoc::new(file_id(*f)?, *l)),
                    None => None,
                },
            },
            DbScope::Inlined {
                proc,
                def_file,
                def_line,
                cs_file,
                cs_line,
            } => ScopeKind::InlinedFrame {
                proc: proc_id(*proc)?,
                def: SourceLoc::new(file_id(*def_file)?, *def_line),
                call_site: SourceLoc::new(file_id(*cs_file)?, *cs_line),
            },
            DbScope::Loop { file, line } => ScopeKind::Loop {
                header: SourceLoc::new(file_id(*file)?, *line),
            },
            DbScope::Stmt { file, line } => ScopeKind::Stmt {
                loc: SourceLoc::new(file_id(*file)?, *line),
            },
        };
        let added = cct.add_child(NodeId(node.parent), kind);
        debug_assert_eq!(added.0, id);
    }
    cct.validate().map_err(DbError::new)?;
    Ok(cct)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_experiment() -> Experiment {
        let mut names = NameTable::new();
        let file = names.file("a.c");
        let module = names.module("a.out");
        let p_main = names.proc("main");
        let p_g = names.proc("g");
        let mut cct = Cct::new(names);
        let root = cct.root();
        let main = cct.add_child(
            root,
            ScopeKind::Frame {
                proc: p_main,
                module,
                def: SourceLoc::new(file, 1),
                call_site: None,
            },
        );
        let lp = cct.add_child(
            main,
            ScopeKind::Loop {
                header: SourceLoc::new(file, 3),
            },
        );
        let g = cct.add_child(
            lp,
            ScopeKind::Frame {
                proc: p_g,
                module,
                def: SourceLoc::new(file, 10),
                call_site: Some(SourceLoc::new(file, 4)),
            },
        );
        let inl = cct.add_child(
            g,
            ScopeKind::InlinedFrame {
                proc: p_main,
                def: SourceLoc::new(file, 1),
                call_site: SourceLoc::new(file, 11),
            },
        );
        let s = cct.add_child(
            inl,
            ScopeKind::Stmt {
                loc: SourceLoc::new(file, 12),
            },
        );
        let mut raw = RawMetrics::new(StorageKind::Dense);
        let cyc = raw.add_metric(MetricDesc::new("cycles", "cycles", 1000.0));
        let fp = raw.add_metric(MetricDesc::new("fp", "ops", 500.0));
        raw.add_cost(cyc, s, 42_000.0);
        raw.add_cost(fp, s, 8_000.0);
        let mut exp = Experiment::build(cct, raw, StorageKind::Dense);
        exp.add_derived("waste", "$0 * 4 - $2").unwrap();
        exp
    }

    #[test]
    fn model_roundtrip_preserves_everything() {
        let exp = sample_experiment();
        let model = DbModel::from_experiment(&exp);
        let rebuilt = model.clone().into_experiment().unwrap();
        assert_eq!(rebuilt.cct.len(), exp.cct.len());
        assert_eq!(rebuilt.raw.metric_count(), exp.raw.metric_count());
        assert_eq!(rebuilt.columns.column_count(), exp.columns.column_count());
        for n in exp.cct.all_nodes() {
            assert_eq!(rebuilt.cct.kind(n), exp.cct.kind(n));
            for c in 0..exp.columns.column_count() as u32 {
                assert_eq!(
                    rebuilt.columns.get(ColumnId(c), n.0),
                    exp.columns.get(ColumnId(c), n.0),
                    "node {n:?} column {c}"
                );
            }
        }
        // A second extraction is identical (stable encoding).
        assert_eq!(DbModel::from_experiment(&rebuilt), model);
    }

    #[test]
    fn rejects_dangling_indices() {
        let exp = sample_experiment();
        let mut model = DbModel::from_experiment(&exp);
        if let DbScope::Frame { proc, .. } = &mut model.nodes[0].scope {
            *proc = 99;
        }
        assert!(model.into_experiment().is_err());
    }

    #[test]
    fn rejects_forward_parent() {
        let exp = sample_experiment();
        let mut model = DbModel::from_experiment(&exp);
        model.nodes[0].parent = 5;
        assert!(model.into_experiment().is_err());
    }

    #[test]
    fn rejects_out_of_range_cost_node() {
        let exp = sample_experiment();
        let mut model = DbModel::from_experiment(&exp);
        model.metrics[0].costs.push((1000, 1.0));
        assert!(model.into_experiment().is_err());
    }

    #[test]
    fn rejects_bad_derived_formula() {
        let exp = sample_experiment();
        let mut model = DbModel::from_experiment(&exp);
        model.derived.push(("bad".into(), "$$$".into()));
        assert!(model.into_experiment().is_err());
    }
}
