#![warn(missing_docs)]
//! # callpath-expdb
//!
//! Experiment database formats: the bridge between `hpcprof` and
//! `hpcviewer`.
//!
//! Three encodings of the same [`model::DbModel`]:
//!
//! * [`xml`] — a human-readable XML-like text format, mirroring
//!   HPCToolkit's `experiment.xml`;
//! * [`bin`] — the *compact binary format* the paper's Section IX lists as
//!   future work ("replacing our XML format for profiles with a more
//!   compact binary format"), with LEB128 varints and delta-coded node
//!   ids (format v1: one undelimited stream);
//! * [`bin2`] — format v2: the same value encoding inside a sectioned,
//!   checksummed container ([`toc`]) with one independently decodable
//!   block per metric column, enabling the lazy reader ([`lazy`]) whose
//!   open cost is bounded by topology size. The `expdb_formats` bench
//!   quantifies the size and speed gaps.
//!
//! All of them round-trip losslessly: name tables, the canonical CCT,
//! metric descriptors, sparse direct costs, and derived-metric
//! definitions. Attribution (Eq. 1/Eq. 2) is recomputed on load — up
//! front for XML/v1, per column on first touch for lazily opened v2 —
//! so the files carry only irreducible measurement data.

pub mod bin;
pub mod bin2;
pub mod lazy;
pub mod model;
pub mod toc;
pub mod xml;

pub use lazy::{decode_all, open_lazy};
pub use model::{DbError, DbModel};

use callpath_core::prelude::Experiment;

/// Serialize to the XML-like text format.
pub fn to_xml(exp: &Experiment) -> String {
    xml::write(&DbModel::from_experiment(exp))
}

/// Parse the XML-like text format.
pub fn from_xml(text: &str) -> Result<Experiment, DbError> {
    xml::read(text)?.into_experiment()
}

/// Serialize to the compact binary format, version 1.
pub fn to_binary(exp: &Experiment) -> Vec<u8> {
    bin::write(&DbModel::from_experiment(exp))
}

/// Serialize to the sectioned binary format, version 2.
pub fn to_binary_v2(exp: &Experiment) -> Vec<u8> {
    bin2::write(&DbModel::from_experiment(exp))
}

/// Binary format version of `data`, if it carries the `CPDB` magic.
///
/// Works on any prefix of at least 5 bytes — openers sniff this before
/// choosing a reader. (v1 encodes its version as a varint and v2 as a
/// plain byte, but for the versions in use both occupy the single byte
/// after the magic.)
pub fn sniff_version(data: &[u8]) -> Option<u8> {
    if data.len() >= 5 && &data[..4] == bin::MAGIC {
        Some(data[4])
    } else {
        None
    }
}

/// Parse either binary format (version negotiated via [`sniff_version`]),
/// decoding everything eagerly. For interactive use over v2 data prefer
/// [`open_lazy`].
pub fn from_binary(data: &[u8]) -> Result<Experiment, DbError> {
    match sniff_version(data) {
        Some(toc::VERSION_BYTE) => bin2::read(data)?.into_experiment(),
        _ => bin::read(data)?.into_experiment(),
    }
}
