#![warn(missing_docs)]
//! # callpath-expdb
//!
//! Experiment database formats: the bridge between `hpcprof` and
//! `hpcviewer`.
//!
//! Two encodings of the same [`model::DbModel`]:
//!
//! * [`xml`] — a human-readable XML-like text format, mirroring
//!   HPCToolkit's `experiment.xml`;
//! * [`bin`] — the *compact binary format* the paper's Section IX lists as
//!   future work ("replacing our XML format for profiles with a more
//!   compact binary format"), with LEB128 varints and delta-coded node
//!   ids. The `expdb_formats` bench quantifies the size and speed gap.
//!
//! Both round-trip losslessly: name tables, the canonical CCT, metric
//! descriptors, sparse direct costs, and derived-metric definitions.
//! Attribution (Eq. 1/Eq. 2) is recomputed on load, so the files carry
//! only irreducible measurement data.

pub mod bin;
pub mod model;
pub mod xml;

pub use model::{DbError, DbModel};

use callpath_core::prelude::Experiment;

/// Serialize to the XML-like text format.
pub fn to_xml(exp: &Experiment) -> String {
    xml::write(&DbModel::from_experiment(exp))
}

/// Parse the XML-like text format.
pub fn from_xml(text: &str) -> Result<Experiment, DbError> {
    xml::read(text)?.into_experiment()
}

/// Serialize to the compact binary format.
pub fn to_binary(exp: &Experiment) -> Vec<u8> {
    bin::write(&DbModel::from_experiment(exp))
}

/// Parse the compact binary format.
pub fn from_binary(data: &[u8]) -> Result<Experiment, DbError> {
    bin::read(data)?.into_experiment()
}
