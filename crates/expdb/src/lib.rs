#![warn(missing_docs)]
//! # callpath-expdb
//!
//! Experiment database formats: the bridge between `hpcprof` and
//! `hpcviewer`.
//!
//! Three encodings of the same [`model::DbModel`]:
//!
//! * [`xml`] — a human-readable XML-like text format, mirroring
//!   HPCToolkit's `experiment.xml`;
//! * [`bin`] — the *compact binary format* the paper's Section IX lists as
//!   future work ("replacing our XML format for profiles with a more
//!   compact binary format"), with LEB128 varints and delta-coded node
//!   ids (format v1: one undelimited stream);
//! * [`bin2`] — format v2: the same value encoding inside a sectioned,
//!   checksummed container ([`toc`]) with one independently decodable
//!   block per metric column, enabling the lazy reader ([`lazy`]) whose
//!   open cost is bounded by topology size. The `expdb_formats` bench
//!   quantifies the size and speed gaps.
//!
//! All of them round-trip losslessly: name tables, the canonical CCT,
//! metric descriptors, sparse direct costs, and derived-metric
//! definitions. Attribution (Eq. 1/Eq. 2) is recomputed on load — up
//! front for XML/v1, per column on first touch for lazily opened v2 —
//! so the files carry only irreducible measurement data.

pub mod bin;
pub mod bin2;
pub mod ens;
pub mod image;
pub mod lazy;
pub mod model;
pub mod toc;
pub mod xml;

pub use image::FileImage;
pub use lazy::{decode_all, open_lazy, open_lazy_path};
pub use model::{DbError, DbModel};

use callpath_core::prelude::Experiment;

/// Serialize to the XML-like text format.
pub fn to_xml(exp: &Experiment) -> String {
    xml::write(&DbModel::from_experiment(exp))
}

/// Parse the XML-like text format.
pub fn from_xml(text: &str) -> Result<Experiment, DbError> {
    xml::read(text)?.into_experiment()
}

/// Serialize to the compact binary format, version 1.
pub fn to_binary(exp: &Experiment) -> Vec<u8> {
    bin::write(&DbModel::from_experiment(exp))
}

/// Serialize to the sectioned binary format, version 2.
pub fn to_binary_v2(exp: &Experiment) -> Vec<u8> {
    bin2::write(&DbModel::from_experiment(exp))
}

/// Serialize to the aligned sectioned format, version 2.1 — same
/// container as v2, but with 8-aligned fixed-width topology arrays and
/// (for large columns) fixed-width cost blocks, so a lazy reader can
/// borrow them zero-copy from the file image.
pub fn to_binary_v21(exp: &Experiment) -> Vec<u8> {
    bin2::write_v21(&DbModel::from_experiment(exp))
}

/// Checksum every section of a v2/v2.1 container (plus the header/TOC
/// digest) without decoding any payload.
///
/// The lazy open path skips checksumming the sections it borrows
/// (topology in v2.1) because a digest pass over tens of megabytes
/// would defeat the point of a lazy open; batch consumers that want the
/// eager reader's bit-level guarantee on a lazily opened file call this
/// first.
pub fn verify_container(data: &[u8]) -> Result<(), DbError> {
    let toc = toc::Toc::parse(data)?;
    toc.verify_all(data)
}

/// Binary format version of `data`, if it carries the `CPDB` magic.
///
/// Works on any prefix of at least 5 bytes — openers sniff this before
/// choosing a reader. (v1 encodes its version as a varint and v2 as a
/// plain byte, but for the versions in use both occupy the single byte
/// after the magic.)
pub fn sniff_version(data: &[u8]) -> Option<u8> {
    if data.len() >= 5 && &data[..4] == bin::MAGIC {
        Some(data[4])
    } else {
        None
    }
}

/// Parse either binary format (version negotiated via [`sniff_version`]),
/// decoding everything eagerly. For interactive use over v2 data prefer
/// [`open_lazy`].
pub fn from_binary(data: &[u8]) -> Result<Experiment, DbError> {
    match sniff_version(data) {
        Some(toc::VERSION_BYTE) => bin2::read(data)?.into_experiment(),
        _ => bin::read(data)?.into_experiment(),
    }
}
