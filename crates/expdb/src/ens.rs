//! The `.cpens` ensemble container: one union supergraph CCT over N
//! runs, cross-run statistic columns, and every run's own costs — all
//! in a single file the lazy reader opens in milliseconds (DESIGN.md
//! §15).
//!
//! A `.cpens` file **is** a valid v2.1 database: its name tables and
//! topology describe the union CCT, and its regular metrics are the
//! cross-run statistics, metric-major — for each base metric, one
//! column per entry of [`STAT_NAMES`] (`"cycles mean"`, `"cycles
//! min"`, ...). `callpath-view` and `callpath-serve` therefore open an
//! ensemble with zero new code, topology-only, and fault exactly the
//! stat columns a sorted view needs.
//!
//! On top of that base the container carries sections a plain v2.1
//! reader skips by id (section ids are a namespace, not positions —
//! see [`crate::toc`]):
//!
//! * [`SEC_ENSEMBLE`] — the **directory**: base metric names, then per
//!   run its label, content fingerprint, and per-metric `(nnz, total)`
//!   summary. Small and always resident; outlier scoring needs nothing
//!   else.
//! * One cost block per `(run, metric)` pair at id `RUN_BLOCK_BASE +
//!   run * n_metrics + metric`, in the standard v2.1 block encoding
//!   over union node ids. [`open_with_runs`] grafts any selection of
//!   them onto the experiment as ordinary lazy columns (named
//!   `"metric@label"`), so per-run drill-down faults only the runs the
//!   user asks for — never all N.
//!
//! Integrity is inherited: the TOC tiles and checksums every section,
//! run blocks included, so [`crate::verify_container`] covers `.cpens`
//! truncation and bit flips with no ensemble-specific code.

use crate::bin::{get_f64, get_string, get_varint, put_f64, put_string, put_varint};
use crate::bin2::{self, MetricInfo};
use crate::image::FileImage;
use crate::lazy::open_image_with;
use crate::model::{topology_parts, DbError, DbMetric, DbModel};
use crate::toc::{Toc, TocBuilder, SEC_ENSEMBLE, SEC_METRICS};
use callpath_core::prelude::*;
use std::path::Path;
use std::sync::Arc;

/// First section id of the per-run cost blocks: run `r`'s block for
/// base metric `m` has id `RUN_BLOCK_BASE + r * n_metrics + m`. Far
/// above any [`crate::toc::SEC_BLOCK_BASE`] stat column id in
/// practice, and collisions are checked at write time regardless.
pub(crate) const RUN_BLOCK_BASE: u32 = 1 << 20;

/// The cross-run statistics stored per base metric, in column order.
/// The stat columns of the base database are metric-major: base metric
/// `m`'s statistic `s` is regular metric `m * STAT_NAMES.len() + s`.
pub const STAT_NAMES: [&str; 4] = ["mean", "min", "max", "stddev"];

/// Hostile-input bounds for the directory decoder.
const MAX_RUNS: u64 = 1 << 20;
const MAX_METRICS: u64 = 1 << 12;

/// One run's row in the ensemble directory.
#[derive(Debug, Clone, PartialEq)]
pub struct RunEntry {
    /// Display label (source file name, rank, ...). Need not be unique.
    pub label: String,
    /// FNV-1a 64 fingerprint of the run's content (topology + metric
    /// descriptors + costs, label excluded), fixed by the builder.
    pub fingerprint: u64,
    /// Per base metric: `(nnz, total direct cost)` of this run's block
    /// — enough for outlier scoring without faulting any block.
    pub stats: Vec<(u64, f64)>,
}

/// The decoded [`SEC_ENSEMBLE`] directory.
#[derive(Debug, Clone, PartialEq)]
pub struct Directory {
    /// Base metric names (`"cycles"`, not `"cycles mean"`), index = m.
    pub metric_names: Vec<String>,
    /// One entry per run, in the builder's canonical order (index = r).
    pub runs: Vec<RunEntry>,
}

/// One run's contribution to a `.cpens` file, already remapped into
/// union node ids by the ensemble builder.
#[derive(Debug, Clone)]
pub struct EnsembleRun {
    /// Display label.
    pub label: String,
    /// Content fingerprint (see [`RunEntry::fingerprint`]).
    pub fingerprint: u64,
    /// Per base metric: sparse `(union node, value)`, ascending by node.
    pub costs: Vec<Vec<(u32, f64)>>,
}

/// An opened ensemble: the lazily opened stats experiment (plus any
/// grafted per-run columns) and the always-resident directory.
pub struct Ensemble {
    /// The union-CCT experiment. Columns `0..metrics*8` are the stat
    /// columns' (I)/(E) pairs; drill-down columns follow.
    pub exp: Experiment,
    /// The decoded directory.
    pub dir: Directory,
}

fn run_block_section(r: u64, m: u64, n_metrics: u64) -> Result<u32, DbError> {
    let id = (RUN_BLOCK_BASE as u64)
        .checked_add(
            r.checked_mul(n_metrics)
                .and_then(|x| x.checked_add(m))
                .ok_or_else(err)?,
        )
        .ok_or_else(err)?;
    return u32::try_from(id).map_err(|_| err());
    fn err() -> DbError {
        DbError::new("run block section id overflow")
    }
}

/// Encode a `.cpens` container: the union CCT, `metric_names.len() *
/// STAT_NAMES.len()` stat columns as the base database's metrics, the
/// directory, and one block per `(run, metric)`.
///
/// `stat_metrics` must be metric-major ([`STAT_NAMES`] order within
/// each base metric) and every run must carry `metric_names.len()`
/// cost lists — builder invariants, checked by assertion.
pub fn write_cpens(
    cct: &Cct,
    stat_metrics: Vec<DbMetric>,
    metric_names: &[String],
    runs: &[EnsembleRun],
) -> Vec<u8> {
    assert_eq!(
        stat_metrics.len(),
        metric_names.len() * STAT_NAMES.len(),
        "one stat column per (metric, statistic)"
    );
    let (procs, files, modules, nodes) = topology_parts(cct);
    let base = DbModel {
        procs,
        files,
        modules,
        nodes,
        metrics: stat_metrics,
        derived: Vec::new(),
        sparse: true,
    };
    let mut b = TocBuilder::new_aligned(true);
    bin2::add_v21_sections(&mut b, &base);

    let mut dir = Vec::new();
    put_varint(&mut dir, metric_names.len() as u64);
    for name in metric_names {
        put_string(&mut dir, name);
    }
    put_varint(&mut dir, runs.len() as u64);
    for r in runs {
        assert_eq!(
            r.costs.len(),
            metric_names.len(),
            "one cost list per metric"
        );
        put_string(&mut dir, &r.label);
        dir.extend_from_slice(&r.fingerprint.to_le_bytes());
        for costs in &r.costs {
            put_varint(&mut dir, costs.len() as u64);
            put_f64(&mut dir, costs.iter().map(|&(_, v)| v).sum());
        }
    }
    b.add(SEC_ENSEMBLE, dir);

    let nm = metric_names.len() as u64;
    for (ri, r) in runs.iter().enumerate() {
        for (mi, costs) in r.costs.iter().enumerate() {
            let sec =
                run_block_section(ri as u64, mi as u64, nm).expect("section id space exceeded");
            b.add(sec, bin2::encode_block_v21(costs));
        }
    }
    b.finish()
}

/// Decode and bound-check a directory payload.
fn parse_directory(payload: &[u8]) -> Result<Directory, DbError> {
    let mut buf = payload;
    let nm = get_varint(&mut buf)?;
    if nm == 0 || nm > MAX_METRICS {
        return Err(DbError::new(format!(
            "ensemble metric count {nm} out of range"
        )));
    }
    let metric_names = (0..nm)
        .map(|_| get_string(&mut buf))
        .collect::<Result<Vec<_>, _>>()?;
    let nr = get_varint(&mut buf)?;
    if nr == 0 || nr > MAX_RUNS {
        return Err(DbError::new(format!(
            "ensemble run count {nr} out of range"
        )));
    }
    // Every (run, metric) block must have a representable section id.
    run_block_section(nr - 1, nm - 1, nm)?;
    let mut runs = Vec::with_capacity(nr as usize);
    for _ in 0..nr {
        let label = get_string(&mut buf)?;
        if buf.len() < 8 {
            return Err(DbError::new("truncated ensemble directory"));
        }
        let fingerprint = u64::from_le_bytes(buf[..8].try_into().unwrap());
        buf = &buf[8..];
        let mut stats = Vec::with_capacity(nm as usize);
        for _ in 0..nm {
            let nnz = get_varint(&mut buf)?;
            if nnz > u32::MAX as u64 {
                return Err(DbError::new(format!("run block nnz {nnz} out of range")));
            }
            let total = get_f64(&mut buf)?;
            stats.push((nnz, total));
        }
        runs.push(RunEntry {
            label,
            fingerprint,
            stats,
        });
    }
    bin2::expect_consumed(buf, "ensemble directory")?;
    Ok(Directory { metric_names, runs })
}

/// Decode just the directory of a `.cpens` byte image (checksum
/// verified). The resident server uses this for outlier queries that
/// never need the experiment at all.
pub fn read_directory(data: &[u8]) -> Result<Directory, DbError> {
    let toc = Toc::parse(data)?;
    parse_directory(toc.section(data, SEC_ENSEMBLE)?)
}

/// Open a `.cpens` file topology-only: stat columns stay on disk until
/// a view faults them, run blocks are never touched.
pub fn open(path: &Path) -> Result<Ensemble, DbError> {
    open_with_runs(path, &[])
}

/// Open a `.cpens` file with per-run drill-down columns appended: each
/// `(run, base metric)` selection grafts that run's cost block onto
/// the experiment as a lazy metric named `"metric@label"`, after the
/// stat columns. Only the selected blocks can ever be faulted.
pub fn open_with_runs(path: &Path, selections: &[(u32, u32)]) -> Result<Ensemble, DbError> {
    let image = FileImage::open(path).map_err(|e| DbError::new(format!("open failed: {e}")))?;
    let image = ByteImage::new(Arc::new(image));
    let data = image.bytes();
    let toc = Toc::parse(data)?;
    let dir = parse_directory(toc.section(data, SEC_ENSEMBLE)?)?;
    let infos = bin2::read_metric_infos(toc.section(data, SEC_METRICS)?)?;
    let n_stats = STAT_NAMES.len();
    if infos.len() != dir.metric_names.len() * n_stats {
        return Err(DbError::new(format!(
            "ensemble has {} stat columns for {} metrics, expected {} per metric",
            infos.len(),
            dir.metric_names.len(),
            n_stats
        )));
    }
    let nm = dir.metric_names.len() as u64;
    let mut extra = Vec::with_capacity(selections.len());
    for &(r, m) in selections {
        let run = dir
            .runs
            .get(r as usize)
            .ok_or_else(|| DbError::new(format!("no run {r} in this ensemble")))?;
        let name = dir
            .metric_names
            .get(m as usize)
            .ok_or_else(|| DbError::new(format!("no metric {m} in this ensemble")))?;
        let (nnz, total) = run.stats[m as usize];
        // Unit and period are not repeated in the directory; the
        // metric's stat columns carry them.
        let stat0 = &infos[m as usize * n_stats];
        let info = MetricInfo {
            name: format!("{name}@{}", run.label),
            unit: stat0.unit.clone(),
            period: stat0.period,
            nnz,
            total,
        };
        extra.push((info, run_block_section(r as u64, m as u64, nm)?));
    }
    let exp = open_image_with(image, extra)?;
    Ok(Ensemble { exp, dir })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny two-metric, three-run ensemble over a hand-built union
    /// CCT: root → main → {fast, slow}.
    fn sample() -> (Cct, Vec<DbMetric>, Vec<String>, Vec<EnsembleRun>) {
        let mut names = NameTable::new();
        let file = names.file("a.c");
        let module = names.module("a");
        let procs: Vec<ProcId> = ["main", "fast", "slow"]
            .iter()
            .map(|p| names.proc(p))
            .collect();
        let mut cct = Cct::new(names);
        let root = cct.root();
        let main = cct.add_child(
            root,
            ScopeKind::Frame {
                proc: procs[0],
                module,
                def: SourceLoc::new(file, 1),
                call_site: None,
            },
        );
        for (i, &p) in procs[1..].iter().enumerate() {
            cct.add_child(
                main,
                ScopeKind::Frame {
                    proc: p,
                    module,
                    def: SourceLoc::new(file, 10 * (i as u32 + 1)),
                    call_site: Some(SourceLoc::new(file, 2 + i as u32)),
                },
            );
        }
        let metric_names = vec!["cycles".to_string(), "insns".to_string()];
        let runs: Vec<EnsembleRun> = (0..3u64)
            .map(|r| EnsembleRun {
                label: format!("run{r}"),
                fingerprint: 0x1000 + r,
                costs: vec![vec![(2, 10.0 * (r + 1) as f64), (3, 5.0)], vec![(2, 1.0)]],
            })
            .collect();
        // Stats here are hand-rolled placeholders; the builder crate
        // computes real ones. mean over the 3 runs of metric 0.
        let stat = |name: &str, costs: Vec<(u32, f64)>| DbMetric {
            name: name.into(),
            unit: "ev".into(),
            period: 1.0,
            costs,
        };
        let stats = vec![
            stat("cycles mean", vec![(2, 20.0), (3, 5.0)]),
            stat("cycles min", vec![(2, 10.0), (3, 5.0)]),
            stat("cycles max", vec![(2, 30.0), (3, 5.0)]),
            stat("cycles stddev", vec![(2, 8.1649658092772603)]),
            stat("insns mean", vec![(2, 1.0)]),
            stat("insns min", vec![(2, 1.0)]),
            stat("insns max", vec![(2, 1.0)]),
            stat("insns stddev", vec![]),
        ];
        (cct, stats, metric_names, runs)
    }

    fn write_sample_to(path: &std::path::Path) -> Vec<u8> {
        let (cct, stats, metric_names, runs) = sample();
        let bytes = write_cpens(&cct, stats, &metric_names, &runs);
        std::fs::write(path, &bytes).unwrap();
        bytes
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cpens-{}-{name}", std::process::id()))
    }

    #[test]
    fn cpens_is_a_valid_v21_database_with_stat_columns() {
        let (cct, stats, metric_names, runs) = sample();
        let bytes = write_cpens(&cct, stats, &metric_names, &runs);
        crate::verify_container(&bytes).unwrap();
        // A plain v2.1 lazy open sees only the stat columns.
        let exp = crate::open_lazy(bytes).unwrap();
        assert_eq!(exp.cct.len(), cct.len());
        assert_eq!(exp.raw.metric_count(), 8);
        assert_eq!(exp.raw.desc(MetricId(0)).name, "cycles mean");
        // Inclusive mean at the root = whole-program mean total.
        assert_eq!(exp.inclusive(MetricId(0), exp.cct.root()), 25.0);
    }

    #[test]
    fn directory_round_trips() {
        let (cct, stats, metric_names, runs) = sample();
        let bytes = write_cpens(&cct, stats, &metric_names, &runs);
        let dir = read_directory(&bytes).unwrap();
        assert_eq!(dir.metric_names, metric_names);
        assert_eq!(dir.runs.len(), 3);
        assert_eq!(dir.runs[1].label, "run1");
        assert_eq!(dir.runs[1].fingerprint, 0x1001);
        assert_eq!(dir.runs[1].stats, vec![(2, 25.0), (1, 1.0)]);
    }

    #[test]
    fn open_grafts_selected_run_columns_only() {
        let path = tmp("graft.cpens");
        write_sample_to(&path);
        let ens = open_with_runs(&path, &[(2, 0)]).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ens.exp.raw.metric_count(), 9);
        let m = MetricId(8);
        assert_eq!(ens.exp.raw.desc(m).name, "cycles@run2");
        // run2's metric-0 costs: 30 at node 2, 5 at node 3.
        assert_eq!(ens.exp.raw.column(m).get(2), 30.0);
        assert_eq!(ens.exp.raw.column(m).get(3), 5.0);
        assert_eq!(ens.exp.inclusive(m, ens.exp.cct.root()), 35.0);
    }

    #[test]
    fn topology_only_open_faults_nothing() {
        let path = tmp("cold.cpens");
        write_sample_to(&path);
        let ens = open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ens.exp.columns.materialized_columns(), 0);
        assert_eq!(ens.exp.raw.materialized_metrics(), 0);
        assert_eq!(ens.dir.runs.len(), 3);
    }

    #[test]
    fn out_of_range_selections_are_rejected() {
        let path = tmp("range.cpens");
        write_sample_to(&path);
        assert!(open_with_runs(&path, &[(3, 0)]).is_err(), "no run 3");
        assert!(open_with_runs(&path, &[(0, 2)]).is_err(), "no metric 2");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected() {
        let (cct, stats, metric_names, runs) = sample();
        let bytes = write_cpens(&cct, stats, &metric_names, &runs);
        for len in 0..bytes.len() {
            assert!(
                crate::verify_container(&bytes[..len]).is_err(),
                "prefix of {len} bytes"
            );
        }
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                crate::verify_container(&bad).is_err(),
                "flip at byte {i} verified successfully"
            );
        }
    }

    #[test]
    fn hostile_directory_counts_are_bounded() {
        let (cct, stats, metric_names, runs) = sample();
        let bytes = write_cpens(&cct, stats, &metric_names, &runs);
        let toc = Toc::parse(&bytes).unwrap();
        let payload = toc.section(&bytes, SEC_ENSEMBLE).unwrap();
        // Patch the metric count varint to an absurd value: the parser
        // must fail on the bound, not allocate.
        let mut huge = Vec::new();
        put_varint(&mut huge, u64::MAX);
        huge.extend_from_slice(&payload[1..]);
        assert!(parse_directory(&huge).is_err());
        let mut zero = payload.to_vec();
        zero[0] = 0;
        assert!(parse_directory(&zero).is_err());
    }
}
