//! The compact binary format, version 2: v1's value encoding inside a
//! sectioned, checksummed container ([`crate::toc`]).
//!
//! Where v1 is one undelimited varint stream (nothing is reachable
//! without decoding everything before it), v2 splits the database into
//! independently decodable sections — name tables, CCT topology, metric
//! descriptors, one cost block **per metric column**, derived-metric
//! definitions — each addressed by the table of contents and verified
//! by checksum on access. That framing is what makes the lazy reader
//! ([`crate::lazy`]) possible: open-time work is bounded by topology
//! size, and a metric block is only decoded when some view first reads
//! a column derived from it.
//!
//! Inside sections the byte-level codecs are shared with v1
//! ([`crate::bin`]): LEB128 varints, delta-coded ascending node ids,
//! IEEE-754 LE floats. A v1 file and a v2 file of the same experiment
//! contain the same cost bytes, just framed differently.
//!
//! Metric descriptors additionally store each column's non-zero count
//! and total direct cost, so whole-program aggregates (the `@n` values
//! formulas reference) are available at open time without touching any
//! cost block.
//!
//! ## The aligned revision (v2.1)
//!
//! [`write_v21`] emits the same container with the aligned payload
//! encoding (see [`crate::toc`]) and two representation changes that
//! enable zero-copy reads:
//!
//! * **Topology** is stored as fixed-width arrays instead of varint
//!   node records: [`crate::toc::SEC_CCT_LINKS`] holds the
//!   parent / first-child / next-sibling `u32` arrays and
//!   [`crate::toc::SEC_CCT_KINDS`] a tag byte plus six `u32` fields per
//!   node (the encoding defined by `callpath_core::mapped`). Both
//!   include the root at index 0. A lazy reader borrows these arrays
//!   straight from the file image.
//! * **Cost blocks** carry a one-byte kind header: kind 0 is the
//!   classic varint/delta encoding (compact, chosen for small columns),
//!   kind 1 is fixed-width — `nnz` as `u64`, then `nnz` `u32` keys,
//!   zero-padding to 8, then `nnz` `f64` values — chosen when
//!   `nnz >= FIXED_CUTOVER` so big columns can be borrowed instead of
//!   decoded. The choice is a pure function of `nnz`, which keeps
//!   re-encoding byte-identical.
//!
//! [`read`] decodes either revision eagerly; the zero-copy open path
//! lives in [`crate::lazy`].

use crate::bin::{
    get_costs, get_count, get_f64, get_node, get_string, get_strings, get_varint, put_costs,
    put_f64, put_node, put_string, put_strings, put_varint,
};
use crate::model::{DbError, DbMetric, DbModel, DbNode, DbScope};
use crate::toc::{
    Toc, TocBuilder, SEC_BLOCK_BASE, SEC_CCT, SEC_CCT_KINDS, SEC_CCT_LINKS, SEC_DERIVED,
    SEC_METRICS, SEC_NAMES,
};
use callpath_core::mapped::{encode_kind, tags, LINK_NONE};
use callpath_core::prelude::{FileId, LoadModuleId, ProcId, ScopeKind, SourceLoc};

/// Descriptor-level metric info: everything about a metric except its
/// costs, which live in the metric's own block.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MetricInfo {
    pub name: String,
    pub unit: String,
    pub period: f64,
    /// Non-zero cost entries in the metric's block.
    pub nnz: u64,
    /// Sum of all direct costs — the whole-program aggregate, available
    /// without decoding the block.
    pub total: f64,
}

/// Encode a model as a v2 container.
pub fn write(model: &DbModel) -> Vec<u8> {
    let mut b = TocBuilder::new(model.sparse);

    let mut names = Vec::new();
    put_strings(&mut names, &model.procs);
    put_strings(&mut names, &model.files);
    put_strings(&mut names, &model.modules);
    b.add(SEC_NAMES, names);

    let mut cct = Vec::new();
    put_varint(&mut cct, model.nodes.len() as u64);
    for n in &model.nodes {
        put_node(&mut cct, n);
    }
    b.add(SEC_CCT, cct);

    let mut metrics = Vec::new();
    put_varint(&mut metrics, model.metrics.len() as u64);
    for m in &model.metrics {
        put_string(&mut metrics, &m.name);
        put_string(&mut metrics, &m.unit);
        put_f64(&mut metrics, m.period);
        put_varint(&mut metrics, m.costs.len() as u64);
        put_f64(&mut metrics, m.costs.iter().map(|&(_, v)| v).sum());
    }
    b.add(SEC_METRICS, metrics);

    let mut derived = Vec::new();
    put_varint(&mut derived, model.derived.len() as u64);
    for (name, formula) in &model.derived {
        put_string(&mut derived, name);
        put_string(&mut derived, formula);
    }
    b.add(SEC_DERIVED, derived);

    for (i, m) in model.metrics.iter().enumerate() {
        let mut block = Vec::new();
        put_costs(&mut block, &m.costs);
        b.add(SEC_BLOCK_BASE + i as u32, block);
    }

    b.finish()
}

/// Cost blocks with at least this many entries use the fixed-width
/// (borrowable) encoding in v2.1 files; smaller ones keep the compact
/// varint encoding. The break-even is where the ~45% varint size win
/// stops mattering (a few cache lines) and decode cost starts to; the
/// exact value only needs to be a deterministic function of `nnz` so
/// that re-encoding a file reproduces it byte for byte.
pub(crate) const FIXED_CUTOVER: u64 = 32;

/// v2.1 cost-block kinds (first body byte).
const BLOCK_VARINT: u8 = 0;
const BLOCK_FIXED: u8 = 1;

/// Encode a model as a v2.1 (aligned) container — same sections as
/// [`write`] except the topology becomes the two fixed-width sections
/// and every cost block gains a kind header; see the module docs.
pub fn write_v21(model: &DbModel) -> Vec<u8> {
    let mut b = TocBuilder::new_aligned(model.sparse);
    add_v21_sections(&mut b, model);
    b.finish()
}

/// Add every standard v2.1 section of `model` to a container under
/// construction: names, topology, metric descriptors, derived
/// definitions, and one cost block per metric. Factored out of
/// [`write_v21`] so the ensemble container ([`crate::ens`]) can embed
/// a complete, valid v2.1 database and append its own sections after.
pub(crate) fn add_v21_sections(b: &mut TocBuilder, model: &DbModel) {
    let mut names = Vec::new();
    put_strings(&mut names, &model.procs);
    put_strings(&mut names, &model.files);
    put_strings(&mut names, &model.modules);
    b.add(SEC_NAMES, names);

    let (links, kinds) = encode_topology(model);
    b.add(SEC_CCT_LINKS, links);
    b.add(SEC_CCT_KINDS, kinds);

    let mut metrics = Vec::new();
    put_varint(&mut metrics, model.metrics.len() as u64);
    for m in &model.metrics {
        put_string(&mut metrics, &m.name);
        put_string(&mut metrics, &m.unit);
        put_f64(&mut metrics, m.period);
        put_varint(&mut metrics, m.costs.len() as u64);
        put_f64(&mut metrics, m.costs.iter().map(|&(_, v)| v).sum());
    }
    b.add(SEC_METRICS, metrics);

    let mut derived = Vec::new();
    put_varint(&mut derived, model.derived.len() as u64);
    for (name, formula) in &model.derived {
        put_string(&mut derived, name);
        put_string(&mut derived, formula);
    }
    b.add(SEC_DERIVED, derived);

    for (i, m) in model.metrics.iter().enumerate() {
        b.add(SEC_BLOCK_BASE + i as u32, encode_block_v21(&m.costs));
    }
}

/// Encode one v2.1 cost-block body: kind byte, 7 padding bytes, then
/// the fixed-width or varint payload. The encoding choice is a pure
/// function of the entry count (see [`FIXED_CUTOVER`]), which is what
/// keeps re-encoding byte-identical.
pub(crate) fn encode_block_v21(costs: &[(u32, f64)]) -> Vec<u8> {
    let nnz = costs.len();
    let mut block;
    if nnz as u64 >= FIXED_CUTOVER {
        let pad = if nnz % 2 == 1 { 4 } else { 0 };
        block = Vec::with_capacity(16 + 4 * nnz + pad + 8 * nnz);
        block.push(BLOCK_FIXED);
        block.resize(8, 0);
        block.extend_from_slice(&(nnz as u64).to_le_bytes());
        for &(node, _) in costs {
            block.extend_from_slice(&node.to_le_bytes());
        }
        block.resize(block.len() + pad, 0);
        for &(_, v) in costs {
            block.extend_from_slice(&v.to_le_bytes());
        }
    } else {
        block = Vec::with_capacity(8 + 9 * nnz);
        block.push(BLOCK_VARINT);
        block.resize(8, 0);
        put_costs(&mut block, costs);
    }
    block
}

/// Build the two v2.1 topology section bodies from a model. Unlike the
/// model's node list, both arrays include the root at index 0 (so node
/// ids equal array indices and the borrow path needs no offsetting).
/// First-child / next-sibling chains are derived in one pass with a
/// scratch last-child array: model nodes are stored in ascending id
/// order, so appending each child to its parent's chain preserves the
/// canonical sibling order.
fn encode_topology(model: &DbModel) -> (Vec<u8>, Vec<u8>) {
    let n = model.nodes.len() + 1;
    let mut parent = vec![LINK_NONE; n];
    let mut first_child = vec![LINK_NONE; n];
    let mut next_sibling = vec![LINK_NONE; n];
    let mut last_child = vec![LINK_NONE; n];
    for (i, node) in model.nodes.iter().enumerate() {
        let id = i as u32 + 1;
        let p = node.parent as usize;
        parent[id as usize] = node.parent;
        if p < n {
            if first_child[p] == LINK_NONE {
                first_child[p] = id;
            } else {
                next_sibling[last_child[p] as usize] = id;
            }
            last_child[p] = id;
        }
    }

    let mut links = Vec::with_capacity(8 + 12 * n);
    links.extend_from_slice(&(n as u64).to_le_bytes());
    for arr in [&parent, &first_child, &next_sibling] {
        for &v in arr.iter() {
            links.extend_from_slice(&v.to_le_bytes());
        }
    }

    let tags_pad = n.div_ceil(8) * 8 - n;
    let mut kinds = Vec::with_capacity(8 + n + tags_pad + 4 * tags::N_FIELDS * n);
    kinds.extend_from_slice(&(n as u64).to_le_bytes());
    kinds.push(tags::ROOT);
    for node in &model.nodes {
        kinds.push(encode_kind(&scope_to_kind(&node.scope)).0);
    }
    kinds.resize(kinds.len() + tags_pad, 0);
    kinds.extend_from_slice(&[0u8; 4 * tags::N_FIELDS]); // root fields
    for node in &model.nodes {
        for v in encode_kind(&scope_to_kind(&node.scope)).1 {
            kinds.extend_from_slice(&v.to_le_bytes());
        }
    }
    (links, kinds)
}

/// Lift a storage-level scope into the core scope type so the v2.1 tag
/// and field layout is defined in exactly one place
/// (`callpath_core::mapped::encode_kind` and its paired decoder).
fn scope_to_kind(scope: &DbScope) -> ScopeKind {
    match *scope {
        DbScope::Frame {
            proc,
            module,
            def_file,
            def_line,
            call_site,
        } => ScopeKind::Frame {
            proc: ProcId(proc),
            module: LoadModuleId(module),
            def: SourceLoc::new(FileId(def_file), def_line),
            call_site: call_site.map(|(f, l)| SourceLoc::new(FileId(f), l)),
        },
        DbScope::Inlined {
            proc,
            def_file,
            def_line,
            cs_file,
            cs_line,
        } => ScopeKind::InlinedFrame {
            proc: ProcId(proc),
            def: SourceLoc::new(FileId(def_file), def_line),
            call_site: SourceLoc::new(FileId(cs_file), cs_line),
        },
        DbScope::Loop { file, line } => ScopeKind::Loop {
            header: SourceLoc::new(FileId(file), line),
        },
        DbScope::Stmt { file, line } => ScopeKind::Stmt {
            loc: SourceLoc::new(FileId(file), line),
        },
    }
}

/// The three name tables of a database: (procs, files, modules).
pub(crate) type NameTables = (Vec<String>, Vec<String>, Vec<String>);

/// Decode the name-table section into (procs, files, modules).
pub(crate) fn read_names(payload: &[u8]) -> Result<NameTables, DbError> {
    let mut buf = payload;
    let procs = get_strings(&mut buf)?;
    let files = get_strings(&mut buf)?;
    let modules = get_strings(&mut buf)?;
    expect_consumed(buf, "name tables")?;
    Ok((procs, files, modules))
}

/// Decode the CCT topology section.
pub(crate) fn read_nodes(payload: &[u8]) -> Result<Vec<DbNode>, DbError> {
    let mut buf = payload;
    let n = get_count(&mut buf, 3, "node")?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(get_node(&mut buf)?);
    }
    expect_consumed(buf, "CCT topology")?;
    Ok(nodes)
}

/// Decode the metric-descriptor section.
pub(crate) fn read_metric_infos(payload: &[u8]) -> Result<Vec<MetricInfo>, DbError> {
    let mut buf = payload;
    // name + unit length prefixes, period, nnz, total: ≥ 19 bytes each.
    let n = get_count(&mut buf, 19, "metric")?;
    let mut infos = Vec::with_capacity(n);
    for _ in 0..n {
        infos.push(MetricInfo {
            name: get_string(&mut buf)?,
            unit: get_string(&mut buf)?,
            period: get_f64(&mut buf)?,
            nnz: get_varint(&mut buf)?,
            total: get_f64(&mut buf)?,
        });
    }
    expect_consumed(buf, "metric descriptors")?;
    Ok(infos)
}

/// Decode the derived-definition section.
pub(crate) fn read_derived(payload: &[u8]) -> Result<Vec<(String, String)>, DbError> {
    let mut buf = payload;
    let n = get_count(&mut buf, 2, "derived metric")?;
    let mut derived = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_string(&mut buf)?;
        let formula = get_string(&mut buf)?;
        derived.push((name, formula));
    }
    expect_consumed(buf, "derived definitions")?;
    Ok(derived)
}

/// Decode one metric's cost block, cross-checking the entry count and
/// node range claimed by its descriptor.
pub(crate) fn read_block(
    payload: &[u8],
    info: &MetricInfo,
    n_nodes: u32,
) -> Result<Vec<(u32, f64)>, DbError> {
    callpath_obs::count("expdb.bin2.read_block", 1);
    let mut buf = payload;
    let costs = get_costs(&mut buf)?;
    expect_consumed(buf, "cost block")?;
    if costs.len() as u64 != info.nnz {
        return Err(DbError::new(format!(
            "metric '{}': block holds {} costs, descriptor says {}",
            info.name,
            costs.len(),
            info.nnz
        )));
    }
    if let Some(&(node, _)) = costs.last() {
        if node >= n_nodes {
            return Err(DbError::new(format!(
                "metric '{}': cost references node {node} beyond CCT size {n_nodes}",
                info.name
            )));
        }
    }
    Ok(costs)
}

/// Parsed offsets of the v2.1 topology arrays, all relative to their
/// section bodies (`parent`/`first_child`/`next_sibling` within
/// `SEC_CCT_LINKS`; `tags`/`fields` within `SEC_CCT_KINDS`). Both body
/// lengths are validated to match `n` exactly, so any window derived
/// from a layout is in bounds.
pub(crate) struct TopoLayout {
    pub n: usize,
    pub parent_off: usize,
    pub first_child_off: usize,
    pub next_sibling_off: usize,
    pub tags_off: usize,
    pub fields_off: usize,
}

/// Validate the two v2.1 topology bodies and compute the array offsets.
pub(crate) fn topo_layout(links: &[u8], kinds: &[u8]) -> Result<TopoLayout, DbError> {
    if links.len() < 8 || kinds.len() < 8 {
        return Err(DbError::new("truncated v2.1 topology"));
    }
    let n_links = u64::from_le_bytes(links[..8].try_into().unwrap());
    let n_kinds = u64::from_le_bytes(kinds[..8].try_into().unwrap());
    if n_links != n_kinds {
        return Err(DbError::new(format!(
            "topology sections disagree on node count ({n_links} vs {n_kinds})"
        )));
    }
    if n_links == 0 || n_links > u32::MAX as u64 {
        return Err(DbError::new(format!("node count {n_links} out of range")));
    }
    let n = n_links as usize;
    let links_expect = 12usize
        .checked_mul(n)
        .and_then(|x| x.checked_add(8))
        .ok_or_else(|| DbError::new("topology size overflow"))?;
    if links.len() != links_expect {
        return Err(DbError::new(format!(
            "link section is {} bytes, {n} nodes need {links_expect}",
            links.len()
        )));
    }
    let tags_end = n
        .div_ceil(8)
        .checked_mul(8)
        .and_then(|x| x.checked_add(8))
        .ok_or_else(|| DbError::new("topology size overflow"))?;
    let kinds_expect = (4 * tags::N_FIELDS)
        .checked_mul(n)
        .and_then(|x| x.checked_add(tags_end))
        .ok_or_else(|| DbError::new("topology size overflow"))?;
    if kinds.len() != kinds_expect {
        return Err(DbError::new(format!(
            "kind section is {} bytes, {n} nodes need {kinds_expect}",
            kinds.len()
        )));
    }
    if kinds[8 + n..tags_end].iter().any(|&b| b != 0) {
        return Err(DbError::new("nonzero tag padding"));
    }
    Ok(TopoLayout {
        n,
        parent_off: 8,
        first_child_off: 8 + 4 * n,
        next_sibling_off: 8 + 8 * n,
        tags_off: 8,
        fields_off: tags_end,
    })
}

/// The storage-level inverse of [`scope_to_kind`]'s encoding: map a
/// v2.1 tag + field sextet back to a scope record. Unused trailing
/// fields are ignored (the writer zeroes them).
fn scope_of(tag: u8, f: &[u32; 6]) -> Result<DbScope, DbError> {
    Ok(match tag {
        tags::FRAME => DbScope::Frame {
            proc: f[0],
            module: f[1],
            def_file: f[2],
            def_line: f[3],
            call_site: Some((f[4], f[5])),
        },
        tags::FRAME_TOP => DbScope::Frame {
            proc: f[0],
            module: f[1],
            def_file: f[2],
            def_line: f[3],
            call_site: None,
        },
        tags::INLINED => DbScope::Inlined {
            proc: f[0],
            def_file: f[1],
            def_line: f[2],
            cs_file: f[3],
            cs_line: f[4],
        },
        tags::LOOP => DbScope::Loop {
            file: f[0],
            line: f[1],
        },
        tags::STMT => DbScope::Stmt {
            file: f[0],
            line: f[1],
        },
        other => return Err(DbError::new(format!("unknown scope tag {other}"))),
    })
}

/// Decode the v2.1 topology sections into node records (the eager
/// path). Sibling links are derived data — the model keeps only
/// parents, and [`encode_topology`] rebuilds the chains on write.
pub(crate) fn read_topology_v21(links: &[u8], kinds: &[u8]) -> Result<Vec<DbNode>, DbError> {
    let lay = topo_layout(links, kinds)?;
    let u32_at = |b: &[u8], off: usize| u32::from_le_bytes(b[off..off + 4].try_into().unwrap());
    if kinds[lay.tags_off] != tags::ROOT {
        return Err(DbError::new("topology node 0 is not the root"));
    }
    let mut nodes = Vec::with_capacity(lay.n - 1);
    for i in 1..lay.n {
        let parent = u32_at(links, lay.parent_off + 4 * i);
        let tag = kinds[lay.tags_off + i];
        if tag == tags::ROOT {
            return Err(DbError::new(format!("node {i}: root tag off node 0")));
        }
        let mut f = [0u32; tags::N_FIELDS];
        for (j, slot) in f.iter_mut().enumerate() {
            *slot = u32_at(kinds, lay.fields_off + 4 * (i * tags::N_FIELDS + j));
        }
        nodes.push(DbNode {
            parent,
            scope: scope_of(tag, &f)?,
        });
    }
    Ok(nodes)
}

/// Validated layout of a fixed-kind (borrowable) v2.1 cost block, with
/// offsets relative to the block body.
pub(crate) struct FixedBlock {
    pub nnz: usize,
    pub keys_off: usize,
    pub vals_off: usize,
}

/// Parse a v2.1 block header against its descriptor: `Ok(None)` means a
/// varint-kind block (costs start at body byte 8), `Ok(Some)` a
/// fixed-kind block with a fully length-checked layout. The encoding
/// choice must match what [`write_v21`] would pick for `info.nnz`, so
/// accepted files re-encode byte-identically.
pub(crate) fn block_layout(body: &[u8], info: &MetricInfo) -> Result<Option<FixedBlock>, DbError> {
    if body.len() < 8 {
        return Err(DbError::new("truncated cost block header"));
    }
    if body[1..8].iter().any(|&b| b != 0) {
        return Err(DbError::new("nonzero cost block header padding"));
    }
    let fixed = match body[0] {
        BLOCK_VARINT => false,
        BLOCK_FIXED => true,
        other => return Err(DbError::new(format!("unknown cost block kind {other}"))),
    };
    if fixed != (info.nnz >= FIXED_CUTOVER) {
        return Err(DbError::new(format!(
            "metric '{}': block kind {} does not match nnz {}",
            info.name, body[0], info.nnz
        )));
    }
    if !fixed {
        return Ok(None);
    }
    if body.len() < 16 {
        return Err(DbError::new("truncated fixed cost block"));
    }
    let nnz64 = u64::from_le_bytes(body[8..16].try_into().unwrap());
    if nnz64 != info.nnz {
        return Err(DbError::new(format!(
            "metric '{}': block holds {nnz64} costs, descriptor says {}",
            info.name, info.nnz
        )));
    }
    let nnz = usize::try_from(nnz64).map_err(|_| DbError::new("cost count overflow"))?;
    let pad = if nnz % 2 == 1 { 4 } else { 0 };
    let expect = 4usize
        .checked_mul(nnz)
        .and_then(|k| k.checked_add(8 * nnz))
        .and_then(|x| x.checked_add(16 + pad))
        .ok_or_else(|| DbError::new("cost block size overflow"))?;
    if body.len() != expect {
        return Err(DbError::new(format!(
            "metric '{}': fixed block is {} bytes, {nnz} costs need {expect}",
            info.name,
            body.len()
        )));
    }
    let keys_off = 16;
    let vals_off = 16 + 4 * nnz + pad;
    if body[keys_off + 4 * nnz..vals_off].iter().any(|&b| b != 0) {
        return Err(DbError::new("nonzero cost block key padding"));
    }
    Ok(Some(FixedBlock {
        nnz,
        keys_off,
        vals_off,
    }))
}

/// Decode one v2.1 cost block eagerly (either kind), with the same
/// descriptor and node-range cross-checks as [`read_block`]. The fixed
/// path additionally verifies keys are strictly ascending — the borrow
/// path binary-searches them.
pub(crate) fn read_block_v21(
    body: &[u8],
    info: &MetricInfo,
    n_nodes: u32,
) -> Result<Vec<(u32, f64)>, DbError> {
    match block_layout(body, info)? {
        None => read_block(&body[8..], info, n_nodes),
        Some(fb) => {
            callpath_obs::count("expdb.bin2.read_block", 1);
            let mut costs = Vec::with_capacity(fb.nnz);
            let mut prev: Option<u32> = None;
            for i in 0..fb.nnz {
                let k = u32::from_le_bytes(
                    body[fb.keys_off + 4 * i..fb.keys_off + 4 * i + 4]
                        .try_into()
                        .unwrap(),
                );
                if prev.is_some_and(|p| k <= p) {
                    return Err(DbError::new(format!(
                        "metric '{}': cost keys not strictly ascending",
                        info.name
                    )));
                }
                if k >= n_nodes {
                    return Err(DbError::new(format!(
                        "metric '{}': cost references node {k} beyond CCT size {n_nodes}",
                        info.name
                    )));
                }
                let v = f64::from_le_bytes(
                    body[fb.vals_off + 8 * i..fb.vals_off + 8 * i + 8]
                        .try_into()
                        .unwrap(),
                );
                costs.push((k, v));
                prev = Some(k);
            }
            Ok(costs)
        }
    }
}

pub(crate) fn expect_consumed(buf: &[u8], what: &str) -> Result<(), DbError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(DbError::new(format!(
            "{} trailing bytes after {what}",
            buf.len()
        )))
    }
}

/// Decode a v2 or v2.1 container eagerly into a model — every section
/// verified and every block decoded up front. The interactive path
/// should prefer [`crate::open_lazy`]; this is for batch consumers and
/// round-trip checks.
pub fn read(data: &[u8]) -> Result<DbModel, DbError> {
    let toc = Toc::parse(data)?;
    let (procs, files, modules) = read_names(toc.section(data, SEC_NAMES)?)?;
    let nodes = if toc.aligned {
        read_topology_v21(
            toc.section(data, SEC_CCT_LINKS)?,
            toc.section(data, SEC_CCT_KINDS)?,
        )?
    } else {
        read_nodes(toc.section(data, SEC_CCT)?)?
    };
    let infos = read_metric_infos(toc.section(data, SEC_METRICS)?)?;
    let derived = read_derived(toc.section(data, SEC_DERIVED)?)?;
    let n_nodes = nodes.len() as u32 + 1; // node ids include the implicit root
    let metrics = infos
        .iter()
        .enumerate()
        .map(|(i, info)| {
            let block = toc.section(data, SEC_BLOCK_BASE + i as u32)?;
            let costs = if toc.aligned {
                read_block_v21(block, info, n_nodes)?
            } else {
                read_block(block, info, n_nodes)?
            };
            Ok(DbMetric {
                name: info.name.clone(),
                unit: info.unit.clone(),
                period: info.period,
                costs,
            })
        })
        .collect::<Result<Vec<_>, DbError>>()?;
    Ok(DbModel {
        procs,
        files,
        modules,
        nodes,
        metrics,
        derived,
        sparse: toc.sparse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::sample_experiment;
    use crate::DbModel;

    #[test]
    fn roundtrip() {
        let exp = sample_experiment();
        let model = DbModel::from_experiment(&exp);
        let bytes = write(&model);
        assert_eq!(read(&bytes).unwrap(), model);
    }

    #[test]
    fn reencode_is_byte_identical() {
        let model = DbModel::from_experiment(&sample_experiment());
        let bytes = write(&model);
        assert_eq!(write(&read(&bytes).unwrap()), bytes);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = write(&DbModel::from_experiment(&sample_experiment()));
        for len in 0..bytes.len() {
            assert!(read(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = write(&DbModel::from_experiment(&sample_experiment()));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(read(&bad).is_err(), "flip at byte {i} decoded successfully");
        }
    }

    #[test]
    fn v21_roundtrip() {
        let exp = sample_experiment();
        let model = DbModel::from_experiment(&exp);
        let bytes = write_v21(&model);
        assert_eq!(read(&bytes).unwrap(), model);
    }

    #[test]
    fn v21_reencode_is_byte_identical() {
        let model = DbModel::from_experiment(&sample_experiment());
        let bytes = write_v21(&model);
        assert_eq!(write_v21(&read(&bytes).unwrap()), bytes);
    }

    #[test]
    fn v21_every_truncation_is_rejected() {
        let bytes = write_v21(&DbModel::from_experiment(&sample_experiment()));
        for len in 0..bytes.len() {
            assert!(read(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn v21_every_bit_flip_is_rejected() {
        let bytes = write_v21(&DbModel::from_experiment(&sample_experiment()));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(read(&bad).is_err(), "flip at byte {i} decoded successfully");
        }
    }

    #[test]
    fn v21_fixed_blocks_appear_past_the_cutover() {
        // A column with >= FIXED_CUTOVER entries must be written in the
        // fixed encoding and decode back identically.
        let nnz = FIXED_CUTOVER as usize + 3;
        let costs: Vec<(u32, f64)> = (0..nnz).map(|i| (i as u32 + 1, i as f64 * 0.5)).collect();
        let model = DbModel {
            procs: vec!["p".into()],
            files: vec!["f".into()],
            modules: vec!["m".into()],
            nodes: (0..nnz as u32 + 1)
                .map(|i| crate::model::DbNode {
                    parent: if i == 0 { 0 } else { i },
                    scope: DbScope::Stmt { file: 0, line: i },
                })
                .collect(),
            metrics: vec![
                DbMetric {
                    name: "big".into(),
                    unit: "u".into(),
                    period: 1.0,
                    costs: costs.clone(),
                },
                DbMetric {
                    name: "small".into(),
                    unit: "u".into(),
                    period: 1.0,
                    costs: vec![(1, 9.0)],
                },
            ],
            derived: vec![],
            sparse: true,
        };
        let bytes = write_v21(&model);
        let toc = Toc::parse(&bytes).unwrap();
        let big = toc.section(&bytes, SEC_BLOCK_BASE).unwrap();
        let small = toc.section(&bytes, SEC_BLOCK_BASE + 1).unwrap();
        assert_eq!(big[0], BLOCK_FIXED);
        assert_eq!(small[0], BLOCK_VARINT);
        let parsed = read(&bytes).unwrap();
        assert_eq!(parsed.metrics[0].costs, costs);
        assert_eq!(parsed.metrics[1].costs, vec![(1, 9.0)]);
        assert_eq!(write_v21(&parsed), bytes);
    }

    #[test]
    fn v21_fixed_block_rejects_unsorted_keys() {
        let nnz = FIXED_CUTOVER as usize;
        let costs: Vec<(u32, f64)> = (0..nnz).map(|i| (i as u32, 1.0)).collect();
        let info = MetricInfo {
            name: "m".into(),
            unit: "u".into(),
            period: 1.0,
            nnz: nnz as u64,
            total: nnz as f64,
        };
        let mut body = vec![BLOCK_FIXED, 0, 0, 0, 0, 0, 0, 0];
        body.extend_from_slice(&(nnz as u64).to_le_bytes());
        for &(k, _) in &costs {
            body.extend_from_slice(&k.to_le_bytes());
        }
        for &(_, v) in &costs {
            body.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(read_block_v21(&body, &info, nnz as u32).unwrap(), costs);
        // Swap two keys: strictly-ascending check must fire.
        let mut bad = body.clone();
        bad[16..20].copy_from_slice(&5u32.to_le_bytes());
        let err = read_block_v21(&bad, &info, nnz as u32).unwrap_err();
        assert!(err.message.contains("ascending"), "got: {}", err.message);
        // Kind byte must match what the cutover dictates for this nnz.
        let mut small_body = vec![BLOCK_FIXED, 0, 0, 0, 0, 0, 0, 0];
        small_body.extend_from_slice(&1u64.to_le_bytes());
        small_body.extend_from_slice(&1u32.to_le_bytes());
        small_body.extend_from_slice(&[0u8; 4]);
        small_body.extend_from_slice(&1.0f64.to_le_bytes());
        let small_info = MetricInfo { nnz: 1, ..info };
        let err = read_block_v21(&small_body, &small_info, 5).unwrap_err();
        assert!(err.message.contains("kind"), "got: {}", err.message);
    }

    #[test]
    fn block_cross_checks_descriptor_and_node_range() {
        let costs = vec![(1u32, 2.0), (4, 1.5)];
        let mut block = Vec::new();
        put_costs(&mut block, &costs);
        let ok = MetricInfo {
            name: "m".into(),
            unit: "u".into(),
            period: 1.0,
            nnz: 2,
            total: 3.5,
        };
        assert_eq!(read_block(&block, &ok, 5).unwrap(), costs);
        let lying = MetricInfo {
            nnz: 3,
            ..ok.clone()
        };
        assert!(read_block(&block, &lying, 5).is_err(), "nnz mismatch");
        assert!(read_block(&block, &ok, 4).is_err(), "node 4 out of range");
    }
}
