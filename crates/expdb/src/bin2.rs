//! The compact binary format, version 2: v1's value encoding inside a
//! sectioned, checksummed container ([`crate::toc`]).
//!
//! Where v1 is one undelimited varint stream (nothing is reachable
//! without decoding everything before it), v2 splits the database into
//! independently decodable sections — name tables, CCT topology, metric
//! descriptors, one cost block **per metric column**, derived-metric
//! definitions — each addressed by the table of contents and verified
//! by checksum on access. That framing is what makes the lazy reader
//! ([`crate::lazy`]) possible: open-time work is bounded by topology
//! size, and a metric block is only decoded when some view first reads
//! a column derived from it.
//!
//! Inside sections the byte-level codecs are shared with v1
//! ([`crate::bin`]): LEB128 varints, delta-coded ascending node ids,
//! IEEE-754 LE floats. A v1 file and a v2 file of the same experiment
//! contain the same cost bytes, just framed differently.
//!
//! Metric descriptors additionally store each column's non-zero count
//! and total direct cost, so whole-program aggregates (the `@n` values
//! formulas reference) are available at open time without touching any
//! cost block.

use crate::bin::{
    get_costs, get_count, get_f64, get_node, get_string, get_strings, get_varint, put_costs,
    put_f64, put_node, put_string, put_strings, put_varint,
};
use crate::model::{DbError, DbMetric, DbModel, DbNode};
use crate::toc::{Toc, TocBuilder, SEC_BLOCK_BASE, SEC_CCT, SEC_DERIVED, SEC_METRICS, SEC_NAMES};

/// Descriptor-level metric info: everything about a metric except its
/// costs, which live in the metric's own block.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MetricInfo {
    pub name: String,
    pub unit: String,
    pub period: f64,
    /// Non-zero cost entries in the metric's block.
    pub nnz: u64,
    /// Sum of all direct costs — the whole-program aggregate, available
    /// without decoding the block.
    pub total: f64,
}

/// Encode a model as a v2 container.
pub fn write(model: &DbModel) -> Vec<u8> {
    let mut b = TocBuilder::new(model.sparse);

    let mut names = Vec::new();
    put_strings(&mut names, &model.procs);
    put_strings(&mut names, &model.files);
    put_strings(&mut names, &model.modules);
    b.add(SEC_NAMES, names);

    let mut cct = Vec::new();
    put_varint(&mut cct, model.nodes.len() as u64);
    for n in &model.nodes {
        put_node(&mut cct, n);
    }
    b.add(SEC_CCT, cct);

    let mut metrics = Vec::new();
    put_varint(&mut metrics, model.metrics.len() as u64);
    for m in &model.metrics {
        put_string(&mut metrics, &m.name);
        put_string(&mut metrics, &m.unit);
        put_f64(&mut metrics, m.period);
        put_varint(&mut metrics, m.costs.len() as u64);
        put_f64(&mut metrics, m.costs.iter().map(|&(_, v)| v).sum());
    }
    b.add(SEC_METRICS, metrics);

    let mut derived = Vec::new();
    put_varint(&mut derived, model.derived.len() as u64);
    for (name, formula) in &model.derived {
        put_string(&mut derived, name);
        put_string(&mut derived, formula);
    }
    b.add(SEC_DERIVED, derived);

    for (i, m) in model.metrics.iter().enumerate() {
        let mut block = Vec::new();
        put_costs(&mut block, &m.costs);
        b.add(SEC_BLOCK_BASE + i as u32, block);
    }

    b.finish()
}

/// The three name tables of a database: (procs, files, modules).
pub(crate) type NameTables = (Vec<String>, Vec<String>, Vec<String>);

/// Decode the name-table section into (procs, files, modules).
pub(crate) fn read_names(payload: &[u8]) -> Result<NameTables, DbError> {
    let mut buf = payload;
    let procs = get_strings(&mut buf)?;
    let files = get_strings(&mut buf)?;
    let modules = get_strings(&mut buf)?;
    expect_consumed(buf, "name tables")?;
    Ok((procs, files, modules))
}

/// Decode the CCT topology section.
pub(crate) fn read_nodes(payload: &[u8]) -> Result<Vec<DbNode>, DbError> {
    let mut buf = payload;
    let n = get_count(&mut buf, 3, "node")?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(get_node(&mut buf)?);
    }
    expect_consumed(buf, "CCT topology")?;
    Ok(nodes)
}

/// Decode the metric-descriptor section.
pub(crate) fn read_metric_infos(payload: &[u8]) -> Result<Vec<MetricInfo>, DbError> {
    let mut buf = payload;
    // name + unit length prefixes, period, nnz, total: ≥ 19 bytes each.
    let n = get_count(&mut buf, 19, "metric")?;
    let mut infos = Vec::with_capacity(n);
    for _ in 0..n {
        infos.push(MetricInfo {
            name: get_string(&mut buf)?,
            unit: get_string(&mut buf)?,
            period: get_f64(&mut buf)?,
            nnz: get_varint(&mut buf)?,
            total: get_f64(&mut buf)?,
        });
    }
    expect_consumed(buf, "metric descriptors")?;
    Ok(infos)
}

/// Decode the derived-definition section.
pub(crate) fn read_derived(payload: &[u8]) -> Result<Vec<(String, String)>, DbError> {
    let mut buf = payload;
    let n = get_count(&mut buf, 2, "derived metric")?;
    let mut derived = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_string(&mut buf)?;
        let formula = get_string(&mut buf)?;
        derived.push((name, formula));
    }
    expect_consumed(buf, "derived definitions")?;
    Ok(derived)
}

/// Decode one metric's cost block, cross-checking the entry count and
/// node range claimed by its descriptor.
pub(crate) fn read_block(
    payload: &[u8],
    info: &MetricInfo,
    n_nodes: u32,
) -> Result<Vec<(u32, f64)>, DbError> {
    callpath_obs::count("expdb.bin2.read_block", 1);
    let mut buf = payload;
    let costs = get_costs(&mut buf)?;
    expect_consumed(buf, "cost block")?;
    if costs.len() as u64 != info.nnz {
        return Err(DbError::new(format!(
            "metric '{}': block holds {} costs, descriptor says {}",
            info.name,
            costs.len(),
            info.nnz
        )));
    }
    if let Some(&(node, _)) = costs.last() {
        if node >= n_nodes {
            return Err(DbError::new(format!(
                "metric '{}': cost references node {node} beyond CCT size {n_nodes}",
                info.name
            )));
        }
    }
    Ok(costs)
}

fn expect_consumed(buf: &[u8], what: &str) -> Result<(), DbError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(DbError::new(format!(
            "{} trailing bytes after {what}",
            buf.len()
        )))
    }
}

/// Decode a v2 container eagerly into a model — every section verified
/// and every block decoded up front. The interactive path should prefer
/// [`crate::open_lazy`]; this is for batch consumers and round-trip
/// checks.
pub fn read(data: &[u8]) -> Result<DbModel, DbError> {
    let toc = Toc::parse(data)?;
    let (procs, files, modules) = read_names(toc.section(data, SEC_NAMES)?)?;
    let nodes = read_nodes(toc.section(data, SEC_CCT)?)?;
    let infos = read_metric_infos(toc.section(data, SEC_METRICS)?)?;
    let derived = read_derived(toc.section(data, SEC_DERIVED)?)?;
    let n_nodes = nodes.len() as u32 + 1; // node ids include the implicit root
    let metrics = infos
        .iter()
        .enumerate()
        .map(|(i, info)| {
            let block = toc.section(data, SEC_BLOCK_BASE + i as u32)?;
            Ok(DbMetric {
                name: info.name.clone(),
                unit: info.unit.clone(),
                period: info.period,
                costs: read_block(block, info, n_nodes)?,
            })
        })
        .collect::<Result<Vec<_>, DbError>>()?;
    Ok(DbModel {
        procs,
        files,
        modules,
        nodes,
        metrics,
        derived,
        sparse: toc.sparse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::sample_experiment;
    use crate::DbModel;

    #[test]
    fn roundtrip() {
        let exp = sample_experiment();
        let model = DbModel::from_experiment(&exp);
        let bytes = write(&model);
        assert_eq!(read(&bytes).unwrap(), model);
    }

    #[test]
    fn reencode_is_byte_identical() {
        let model = DbModel::from_experiment(&sample_experiment());
        let bytes = write(&model);
        assert_eq!(write(&read(&bytes).unwrap()), bytes);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = write(&DbModel::from_experiment(&sample_experiment()));
        for len in 0..bytes.len() {
            assert!(read(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = write(&DbModel::from_experiment(&sample_experiment()));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(read(&bad).is_err(), "flip at byte {i} decoded successfully");
        }
    }

    #[test]
    fn block_cross_checks_descriptor_and_node_range() {
        let costs = vec![(1u32, 2.0), (4, 1.5)];
        let mut block = Vec::new();
        put_costs(&mut block, &costs);
        let ok = MetricInfo {
            name: "m".into(),
            unit: "u".into(),
            period: 1.0,
            nnz: 2,
            total: 3.5,
        };
        assert_eq!(read_block(&block, &ok, 5).unwrap(), costs);
        let lying = MetricInfo {
            nnz: 3,
            ..ok.clone()
        };
        assert!(read_block(&block, &lying, 5).is_err(), "nnz mismatch");
        assert!(read_block(&block, &ok, 4).is_err(), "node 4 out of range");
    }
}
