//! The XML-like text format (what HPCToolkit historically used for
//! experiment databases). Hand-rolled writer and parser for exactly the
//! subset we emit: nested elements, attributes, escaped text.

use crate::model::{DbError, DbMetric, DbModel, DbNode, DbScope};
use std::collections::HashMap;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, DbError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i..];
        let end = rest
            .find(';')
            .ok_or_else(|| DbError::new("unterminated entity"))?;
        match &rest[..=end] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => return Err(DbError::new(format!("unknown entity {other}"))),
        }
        // Skip the consumed entity body.
        for _ in 0..end {
            chars.next();
        }
    }
    Ok(out)
}

/// Serialize a model as XML-like text.
pub fn write(model: &DbModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<Experiment version=\"1\" sparse=\"{}\">",
        model.sparse
    );

    let name_list = |out: &mut String, tag: &str, items: &[String]| {
        let _ = writeln!(out, "  <{tag}>");
        for (i, s) in items.iter().enumerate() {
            let _ = writeln!(out, "    <n i=\"{i}\">{}</n>", escape(s));
        }
        let _ = writeln!(out, "  </{tag}>");
    };
    name_list(&mut out, "Procs", &model.procs);
    name_list(&mut out, "Files", &model.files);
    name_list(&mut out, "Modules", &model.modules);

    let _ = writeln!(out, "  <CCT>");
    for (i, n) in model.nodes.iter().enumerate() {
        let id = i + 1;
        match &n.scope {
            DbScope::Frame {
                proc,
                module,
                def_file,
                def_line,
                call_site,
            } => {
                let cs = match call_site {
                    Some((f, l)) => format!(" csf=\"{f}\" csl=\"{l}\""),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "    <F id=\"{id}\" p=\"{}\" n=\"{proc}\" lm=\"{module}\" f=\"{def_file}\" l=\"{def_line}\"{cs}/>",
                    n.parent
                );
            }
            DbScope::Inlined {
                proc,
                def_file,
                def_line,
                cs_file,
                cs_line,
            } => {
                let _ = writeln!(
                    out,
                    "    <I id=\"{id}\" p=\"{}\" n=\"{proc}\" f=\"{def_file}\" l=\"{def_line}\" csf=\"{cs_file}\" csl=\"{cs_line}\"/>",
                    n.parent
                );
            }
            DbScope::Loop { file, line } => {
                let _ = writeln!(
                    out,
                    "    <L id=\"{id}\" p=\"{}\" f=\"{file}\" l=\"{line}\"/>",
                    n.parent
                );
            }
            DbScope::Stmt { file, line } => {
                let _ = writeln!(
                    out,
                    "    <S id=\"{id}\" p=\"{}\" f=\"{file}\" l=\"{line}\"/>",
                    n.parent
                );
            }
        }
    }
    let _ = writeln!(out, "  </CCT>");

    let _ = writeln!(out, "  <Metrics>");
    for (mi, m) in model.metrics.iter().enumerate() {
        let _ = writeln!(
            out,
            "    <Metric i=\"{mi}\" name=\"{}\" unit=\"{}\" period=\"{}\">",
            escape(&m.name),
            escape(&m.unit),
            m.period
        );
        for &(node, v) in &m.costs {
            let _ = writeln!(out, "      <C n=\"{node}\" v=\"{v}\"/>");
        }
        let _ = writeln!(out, "    </Metric>");
    }
    let _ = writeln!(out, "  </Metrics>");

    let _ = writeln!(out, "  <DerivedMetrics>");
    for (name, formula) in &model.derived {
        let _ = writeln!(
            out,
            "    <D name=\"{}\">{}</D>",
            escape(name),
            escape(formula)
        );
    }
    let _ = writeln!(out, "  </DerivedMetrics>");
    let _ = writeln!(out, "</Experiment>");
    out
}

/// A parsed tag: name, attributes, kind.
#[derive(Debug, PartialEq)]
enum Tag {
    Open(String, HashMap<String, String>),
    Close(String),
    Empty(String, HashMap<String, String>),
    Text(String),
}

/// Minimal tokenizer for our XML subset.
struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn next_tag(&mut self) -> Result<Option<Tag>, DbError> {
        // Skip whitespace; gather any non-whitespace text before '<'.
        while self.pos < self.src.len() {
            let rest = &self.src[self.pos..];
            if let Some(stripped) = rest.strip_prefix('<') {
                let end = stripped
                    .find('>')
                    .ok_or_else(|| DbError::new("unterminated tag"))?;
                let body = &stripped[..end];
                self.pos += end + 2;
                if let Some(name) = body.strip_prefix('/') {
                    return Ok(Some(Tag::Close(name.trim().to_owned())));
                }
                let empty = body.ends_with('/');
                let body = body.trim_end_matches('/');
                let (name, attrs) = parse_attrs(body)?;
                return Ok(Some(if empty {
                    Tag::Empty(name, attrs)
                } else {
                    Tag::Open(name, attrs)
                }));
            }
            let text_end = rest.find('<').unwrap_or(rest.len());
            let text = rest[..text_end].trim();
            self.pos += text_end;
            if !text.is_empty() {
                return Ok(Some(Tag::Text(unescape(text)?)));
            }
            if text_end == rest.len() {
                break;
            }
        }
        Ok(None)
    }
}

fn parse_attrs(body: &str) -> Result<(String, HashMap<String, String>), DbError> {
    let body = body.trim();
    let name_end = body.find(char::is_whitespace).unwrap_or(body.len());
    let name = body[..name_end].to_owned();
    let mut attrs = HashMap::new();
    let mut rest = body[name_end..].trim_start();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| DbError::new(format!("malformed attribute in <{name}>")))?;
        let key = rest[..eq].trim().to_owned();
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(DbError::new("attribute value must be quoted"));
        }
        let close = after[1..]
            .find('"')
            .ok_or_else(|| DbError::new("unterminated attribute value"))?;
        attrs.insert(key, unescape(&after[1..=close])?);
        rest = after[close + 2..].trim_start();
    }
    Ok((name, attrs))
}

fn req<'m>(attrs: &'m HashMap<String, String>, key: &str, tag: &str) -> Result<&'m str, DbError> {
    attrs
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| DbError::new(format!("<{tag}> missing attribute {key}")))
}

fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, DbError> {
    s.parse()
        .map_err(|_| DbError::new(format!("bad number '{s}' in {what}")))
}

/// Parse the XML-like text format.
pub fn read(text: &str) -> Result<DbModel, DbError> {
    let mut lx = Lexer { src: text, pos: 0 };
    let mut model = DbModel {
        procs: Vec::new(),
        files: Vec::new(),
        modules: Vec::new(),
        nodes: Vec::new(),
        metrics: Vec::new(),
        derived: Vec::new(),
        sparse: false,
    };

    // <Experiment ...>
    match lx.next_tag()? {
        Some(Tag::Open(name, attrs)) if name == "Experiment" => {
            if let Some(s) = attrs.get("sparse") {
                model.sparse = s == "true";
            }
        }
        _ => return Err(DbError::new("expected <Experiment>")),
    }

    #[derive(PartialEq)]
    enum Section {
        None,
        Procs,
        Files,
        Modules,
        Cct,
        Metrics,
        Derived,
    }
    let mut section = Section::None;
    let mut pending_name_idx: Option<usize> = None;
    let mut pending_derived: Option<String> = None;

    while let Some(tag) = lx.next_tag()? {
        match tag {
            Tag::Open(name, attrs) => match name.as_str() {
                "Procs" => section = Section::Procs,
                "Files" => section = Section::Files,
                "Modules" => section = Section::Modules,
                "CCT" => section = Section::Cct,
                "Metrics" => section = Section::Metrics,
                "DerivedMetrics" => section = Section::Derived,
                "n" => {
                    pending_name_idx = Some(num(req(&attrs, "i", "n")?, "name index")?);
                }
                "Metric" => {
                    model.metrics.push(DbMetric {
                        name: req(&attrs, "name", "Metric")?.to_owned(),
                        unit: req(&attrs, "unit", "Metric")?.to_owned(),
                        period: num(req(&attrs, "period", "Metric")?, "period")?,
                        costs: Vec::new(),
                    });
                }
                "D" => {
                    pending_derived = Some(req(&attrs, "name", "D")?.to_owned());
                }
                other => return Err(DbError::new(format!("unexpected <{other}>"))),
            },
            Tag::Empty(name, attrs) => match name.as_str() {
                "F" | "I" | "L" | "S" => {
                    let parent = num(req(&attrs, "p", &name)?, "parent")?;
                    let scope = match name.as_str() {
                        "F" => DbScope::Frame {
                            proc: num(req(&attrs, "n", "F")?, "proc")?,
                            module: num(req(&attrs, "lm", "F")?, "module")?,
                            def_file: num(req(&attrs, "f", "F")?, "file")?,
                            def_line: num(req(&attrs, "l", "F")?, "line")?,
                            call_site: match (attrs.get("csf"), attrs.get("csl")) {
                                (Some(f), Some(l)) => Some((num(f, "csf")?, num(l, "csl")?)),
                                _ => None,
                            },
                        },
                        "I" => DbScope::Inlined {
                            proc: num(req(&attrs, "n", "I")?, "proc")?,
                            def_file: num(req(&attrs, "f", "I")?, "file")?,
                            def_line: num(req(&attrs, "l", "I")?, "line")?,
                            cs_file: num(req(&attrs, "csf", "I")?, "csf")?,
                            cs_line: num(req(&attrs, "csl", "I")?, "csl")?,
                        },
                        "L" => DbScope::Loop {
                            file: num(req(&attrs, "f", "L")?, "file")?,
                            line: num(req(&attrs, "l", "L")?, "line")?,
                        },
                        _ => DbScope::Stmt {
                            file: num(req(&attrs, "f", "S")?, "file")?,
                            line: num(req(&attrs, "l", "S")?, "line")?,
                        },
                    };
                    let id: usize = num(req(&attrs, "id", &name)?, "id")?;
                    if id != model.nodes.len() + 1 {
                        return Err(DbError::new(format!(
                            "node ids must be dense and ordered; got {id}, expected {}",
                            model.nodes.len() + 1
                        )));
                    }
                    model.nodes.push(DbNode { parent, scope });
                }
                "C" => {
                    let m = model
                        .metrics
                        .last_mut()
                        .ok_or_else(|| DbError::new("<C> outside <Metric>"))?;
                    m.costs.push((
                        num(req(&attrs, "n", "C")?, "node")?,
                        num(req(&attrs, "v", "C")?, "value")?,
                    ));
                }
                other => return Err(DbError::new(format!("unexpected <{other}/>"))),
            },
            Tag::Text(text) => {
                if let Some(idx) = pending_name_idx.take() {
                    let list = match section {
                        Section::Procs => &mut model.procs,
                        Section::Files => &mut model.files,
                        Section::Modules => &mut model.modules,
                        _ => return Err(DbError::new("name text outside a name section")),
                    };
                    if idx != list.len() {
                        return Err(DbError::new("name indices must be dense and ordered"));
                    }
                    list.push(text);
                } else if let Some(name) = pending_derived.take() {
                    model.derived.push((name, text));
                } else {
                    return Err(DbError::new(format!("unexpected text '{text}'")));
                }
            }
            Tag::Close(_) => {
                // Empty <n></n> would be an empty string name; we never emit
                // empty names, so a dangling pending index is an error.
                if pending_name_idx.take().is_some() {
                    return Err(DbError::new("empty name element"));
                }
                pending_derived = None;
            }
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::sample_experiment;
    use crate::DbModel;

    #[test]
    fn roundtrip() {
        let exp = sample_experiment();
        let model = DbModel::from_experiment(&exp);
        let text = write(&model);
        let parsed = read(&text).unwrap();
        assert_eq!(parsed, model);
    }

    #[test]
    fn escaping_roundtrips() {
        let mut exp = sample_experiment();
        // A name with every escapable character.
        let weird = r#"operator<< & "friends" <T>'s"#;
        exp.cct.names.proc(weird);
        let model = DbModel::from_experiment(&exp);
        let text = write(&model);
        let parsed = read(&text).unwrap();
        assert!(parsed.procs.contains(&weird.to_owned()));
    }

    #[test]
    fn full_experiment_roundtrip() {
        let exp = sample_experiment();
        let text = crate::to_xml(&exp);
        let rebuilt = crate::from_xml(&text).unwrap();
        assert_eq!(rebuilt.cct.len(), exp.cct.len());
        assert_eq!(
            crate::to_xml(&rebuilt),
            text,
            "serialize∘parse must be a fixed point"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(read("").is_err());
        assert!(read("<Wrong/>").is_err());
        assert!(read("<Experiment version=\"1\"><CCT><F id=\"2\" p=\"0\"/></CCT>").is_err());
    }

    #[test]
    fn rejects_non_dense_node_ids() {
        let text = r#"<Experiment version="1" sparse="false">
  <CCT>
    <S id="5" p="0" f="0" l="1"/>
  </CCT>
</Experiment>"#;
        let err = read(text).unwrap_err();
        assert!(err.message.contains("dense"), "{err}");
    }

    #[test]
    fn unescape_rejects_unknown_entities() {
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&amp").is_err());
        assert_eq!(unescape("a&amp;b").unwrap(), "a&b");
    }
}
