//! Container framing for format v2: a fixed-size header, a table of
//! contents, and checksummed sections that exactly tile the rest of the
//! file.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CPDB"
//! 4       1     version byte (2)
//! 5       1     flags (bit 0: sparse storage)
//! 6       2     reserved (zero)
//! 8       4     section count, u32 LE
//! 12      8     FNV-1a 64 checksum of bytes 0..12 and all TOC entries
//! 20      32×n  TOC entries: id u32, reserved u32, offset u64,
//!               length u64, payload checksum u64 (all LE)
//! ...           section payloads, in TOC order, back to back
//! ```
//!
//! Two framing invariants make corruption detection total:
//!
//! * **Tiling** — the first section starts right after the TOC, each
//!   section starts where the previous one ends, and the last one ends
//!   at the file's final byte. Any truncation (at *every* prefix
//!   length) therefore fails either the header/TOC bounds check or the
//!   tiling check before a single payload byte is decoded.
//! * **Checksums** — the header+TOC carry their own FNV-1a 64 digest,
//!   and every section records the digest of its payload, verified on
//!   first access. A bit flip anywhere in the file is caught by exactly
//!   one of these.
//!
//! Sections are identified by numeric id, not position, so readers skip
//! ids they do not understand and future revisions can append sections
//! without breaking v2 readers.
//!
//! ## The aligned revision (v2.1)
//!
//! Flag bit 1 ([`FLAG_ALIGNED`]) marks the *aligned* encoding used by
//! the zero-copy read path. The framing is unchanged (same header, same
//! TOC, same tiling and checksum rules); what changes is that every
//! section payload wraps its body in a self-padding prefix:
//!
//! ```text
//! payload = pad_len u8, pad_len zero bytes, body
//! ```
//!
//! where `pad_len < 8` is chosen at write time so the body starts at a
//! file offset that is a multiple of 8. Readers that hold the file in
//! 8-aligned memory (an mmap, or an aligned buffer) can then borrow
//! `u32`/`f64` arrays straight out of the body with no decode step.
//! Section checksums cover the whole payload, padding included, so the
//! bit-flip guarantee is unchanged. [`Toc::section`] strips the padding
//! transparently; the borrow path uses [`Toc::raw_payload`] to learn
//! absolute body offsets.

use crate::model::DbError;
use std::collections::HashMap;

/// Fixed ids for the well-known sections. Per-metric cost blocks start
/// at [`SEC_BLOCK_BASE`] (block for metric `m` has id `SEC_BLOCK_BASE + m`),
/// leaving room for more fixed sections below.
pub(crate) const SEC_NAMES: u32 = 1;
/// CCT topology (node records).
pub(crate) const SEC_CCT: u32 = 2;
/// Metric descriptors (name, unit, period, nnz, total) — no cost data.
pub(crate) const SEC_METRICS: u32 = 3;
/// Derived-metric definitions (name, formula).
pub(crate) const SEC_DERIVED: u32 = 4;
/// Aligned CCT link arrays (parent / first-child / next-sibling), v2.1
/// files only — replaces [`SEC_CCT`] there.
pub(crate) const SEC_CCT_LINKS: u32 = 5;
/// Aligned CCT scope kinds (tag bytes + fixed-width fields), v2.1 only.
pub(crate) const SEC_CCT_KINDS: u32 = 6;
/// Ensemble directory (run labels, fingerprints, per-run per-metric
/// totals) — `.cpens` files only ([`crate::ens`]); plain v2.1 readers
/// skip it, which is what makes an ensemble container a valid database.
pub(crate) const SEC_ENSEMBLE: u32 = 7;
/// First per-metric cost block id.
pub(crate) const SEC_BLOCK_BASE: u32 = 16;

pub(crate) const VERSION_BYTE: u8 = 2;
const FLAG_SPARSE: u8 = 1;
/// Flag bit marking the aligned (v2.1) payload encoding.
const FLAG_ALIGNED: u8 = 2;
const HEADER_LEN: usize = 20;
const ENTRY_LEN: usize = 32;
/// Checksummed prefix of the header (everything before the digest field).
const CHECKSUM_SPLIT: usize = 12;

/// FNV-1a 64-bit: tiny, dependency-free, and plenty for integrity
/// checking (this guards against rot and truncation, not adversaries).
pub(crate) fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One parsed TOC entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TocEntry {
    pub id: u32,
    pub offset: u64,
    pub len: u64,
    pub checksum: u64,
}

/// The parsed table of contents of a v2 file.
#[derive(Debug, Clone)]
pub(crate) struct Toc {
    pub sparse: bool,
    /// True for v2.1 files: payloads carry the self-padding prefix.
    pub aligned: bool,
    pub entries: Vec<TocEntry>,
    /// Section id → index into `entries`, so lookups are O(1) even for
    /// files with thousands of per-metric blocks.
    index: HashMap<u32, usize>,
}

impl Toc {
    /// Parse and fully validate the header + TOC of `data`: magic,
    /// version, header checksum, and the tiling invariant.
    pub fn parse(data: &[u8]) -> Result<Toc, DbError> {
        if data.len() < HEADER_LEN {
            return Err(DbError::new("truncated v2 header"));
        }
        if &data[..4] != super::bin::MAGIC {
            return Err(DbError::new("bad magic"));
        }
        if data[4] != VERSION_BYTE {
            return Err(DbError::new(format!("unsupported version {}", data[4])));
        }
        let flags = data[5];
        if flags & !(FLAG_SPARSE | FLAG_ALIGNED) != 0 {
            return Err(DbError::new(format!("unknown flags {flags:#x}")));
        }
        if data[6] != 0 || data[7] != 0 {
            return Err(DbError::new("reserved header bytes not zero"));
        }
        let count = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
        let toc_end = HEADER_LEN
            .checked_add(count.checked_mul(ENTRY_LEN).ok_or_else(toc_overflow)?)
            .ok_or_else(toc_overflow)?;
        if data.len() < toc_end {
            return Err(DbError::new("truncated table of contents"));
        }
        let stored = u64::from_le_bytes(data[CHECKSUM_SPLIT..HEADER_LEN].try_into().unwrap());
        let mut digest_input = Vec::with_capacity(CHECKSUM_SPLIT + toc_end - HEADER_LEN);
        digest_input.extend_from_slice(&data[..CHECKSUM_SPLIT]);
        digest_input.extend_from_slice(&data[HEADER_LEN..toc_end]);
        if fnv1a64(&digest_input) != stored {
            return Err(DbError::new("header/TOC checksum mismatch"));
        }

        let mut entries = Vec::with_capacity(count);
        let mut index = HashMap::with_capacity(count);
        let mut expect_offset = toc_end as u64;
        for i in 0..count {
            let e = &data[HEADER_LEN + i * ENTRY_LEN..HEADER_LEN + (i + 1) * ENTRY_LEN];
            let entry = TocEntry {
                id: u32::from_le_bytes(e[0..4].try_into().unwrap()),
                offset: u64::from_le_bytes(e[8..16].try_into().unwrap()),
                len: u64::from_le_bytes(e[16..24].try_into().unwrap()),
                checksum: u64::from_le_bytes(e[24..32].try_into().unwrap()),
            };
            // Sections tile the file: no gaps, no overlaps, no reordering.
            if entry.offset != expect_offset {
                return Err(DbError::new(format!(
                    "section {} at offset {} breaks tiling (expected {})",
                    entry.id, entry.offset, expect_offset
                )));
            }
            expect_offset = entry
                .offset
                .checked_add(entry.len)
                .ok_or_else(toc_overflow)?;
            if expect_offset > data.len() as u64 {
                return Err(DbError::new(format!(
                    "section {} overruns the file ({} > {})",
                    entry.id,
                    expect_offset,
                    data.len()
                )));
            }
            if index.insert(entry.id, i).is_some() {
                return Err(DbError::new(format!("duplicate section id {}", entry.id)));
            }
            entries.push(entry);
        }
        if expect_offset != data.len() as u64 {
            return Err(DbError::new(format!(
                "{} trailing bytes after the last section",
                data.len() as u64 - expect_offset
            )));
        }
        Ok(Toc {
            sparse: flags & FLAG_SPARSE != 0,
            aligned: flags & FLAG_ALIGNED != 0,
            entries,
            index,
        })
    }

    /// True if a section with `id` exists.
    pub fn contains(&self, id: u32) -> bool {
        self.index.contains_key(&id)
    }

    fn entry(&self, id: u32) -> Result<&TocEntry, DbError> {
        self.index
            .get(&id)
            .map(|&i| &self.entries[i])
            .ok_or_else(|| DbError::new(format!("missing section {id}")))
    }

    /// Body of the section with `id`, checksum-verified on access. For
    /// aligned files the self-padding prefix is stripped, so callers
    /// always see the logical section content.
    pub fn section<'a>(&self, data: &'a [u8], id: u32) -> Result<&'a [u8], DbError> {
        self.verify_section(data, id)?;
        let (_, body) = self.raw_payload(data, id)?;
        Ok(body)
    }

    /// Checksum the payload of section `id` (padding included) without
    /// decoding anything.
    pub fn verify_section(&self, data: &[u8], id: u32) -> Result<(), DbError> {
        let entry = self.entry(id)?;
        let payload = &data[entry.offset as usize..(entry.offset + entry.len) as usize];
        callpath_obs::count("expdb.toc.verify", 1);
        callpath_obs::observe("expdb.toc.section_bytes", payload.len() as u64);
        if fnv1a64(payload) != entry.checksum {
            callpath_obs::count("expdb.toc.verify_fail", 1);
            return Err(DbError::new(format!("section {id} checksum mismatch")));
        }
        Ok(())
    }

    /// Checksum every section. Batch consumers and property tests use
    /// this to get the eager reader's full-file integrity guarantee on
    /// the lazy path, where large sections are otherwise verified only
    /// on first fault (or, for borrowed topology, structurally).
    pub fn verify_all(&self, data: &[u8]) -> Result<(), DbError> {
        for e in &self.entries {
            self.verify_section(data, e.id)?;
        }
        Ok(())
    }

    /// Body of section `id` *without* checksum verification, plus its
    /// absolute offset in `data`. This is the zero-copy entry point: for
    /// aligned files the returned offset is a multiple of 8 (validated
    /// here), so fixed-width arrays inside the body can be borrowed
    /// directly when the backing memory is 8-aligned. Callers decide
    /// when to pay for verification ([`Toc::verify_section`]).
    pub fn raw_payload<'a>(&self, data: &'a [u8], id: u32) -> Result<(usize, &'a [u8]), DbError> {
        let entry = self.entry(id)?;
        let start = entry.offset as usize;
        let payload = &data[start..start + entry.len as usize];
        if !self.aligned {
            return Ok((start, payload));
        }
        let pad = *payload
            .first()
            .ok_or_else(|| DbError::new(format!("section {id}: empty aligned payload")))?
            as usize;
        if pad >= 8 || payload.len() < 1 + pad {
            return Err(DbError::new(format!("section {id}: bad pad length {pad}")));
        }
        if payload[1..1 + pad].iter().any(|&b| b != 0) {
            return Err(DbError::new(format!("section {id}: nonzero padding")));
        }
        let body_off = start + 1 + pad;
        if !body_off.is_multiple_of(8) {
            return Err(DbError::new(format!(
                "section {id}: body offset {body_off} not 8-aligned"
            )));
        }
        Ok((body_off, &payload[1 + pad..]))
    }
}

fn toc_overflow() -> DbError {
    DbError::new("table of contents length overflow")
}

/// Accumulates sections and emits the framed file.
pub(crate) struct TocBuilder {
    sparse: bool,
    aligned: bool,
    sections: Vec<(u32, Vec<u8>)>,
}

impl TocBuilder {
    pub fn new(sparse: bool) -> Self {
        TocBuilder {
            sparse,
            aligned: false,
            sections: Vec::new(),
        }
    }

    /// A builder for the aligned (v2.1) encoding: `finish` wraps every
    /// section body in the self-padding prefix so bodies land on file
    /// offsets that are multiples of 8.
    pub fn new_aligned(sparse: bool) -> Self {
        TocBuilder {
            sparse,
            aligned: true,
            sections: Vec::new(),
        }
    }

    pub fn add(&mut self, id: u32, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    pub fn finish(self) -> Vec<u8> {
        let toc_end = HEADER_LEN + self.sections.len() * ENTRY_LEN;
        // Wrap bodies for the aligned encoding. Payload offsets depend
        // on the lengths of everything before them, so pad lengths are
        // computed here, in one pass over the final layout.
        let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(self.sections.len());
        let mut offset = toc_end;
        for (id, body) in self.sections {
            let payload = if self.aligned {
                let pad = (8 - (offset + 1) % 8) % 8;
                let mut p = Vec::with_capacity(1 + pad + body.len());
                p.push(pad as u8);
                p.resize(1 + pad, 0);
                p.extend_from_slice(&body);
                p
            } else {
                body
            };
            offset += payload.len();
            sections.push((id, payload));
        }

        let total: usize = toc_end + sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(super::bin::MAGIC);
        out.push(VERSION_BYTE);
        let mut flags = 0u8;
        if self.sparse {
            flags |= FLAG_SPARSE;
        }
        if self.aligned {
            flags |= FLAG_ALIGNED;
        }
        out.push(flags);
        out.extend_from_slice(&[0, 0]); // reserved
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // checksum, patched below

        let mut offset = toc_end as u64;
        for (id, payload) in &sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // reserved
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        let mut digest_input = Vec::with_capacity(CHECKSUM_SPLIT + toc_end - HEADER_LEN);
        digest_input.extend_from_slice(&out[..CHECKSUM_SPLIT]);
        digest_input.extend_from_slice(&out[HEADER_LEN..toc_end]);
        let digest = fnv1a64(&digest_input).to_le_bytes();
        out[CHECKSUM_SPLIT..HEADER_LEN].copy_from_slice(&digest);

        for (_, payload) in sections {
            out.extend_from_slice(&payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = TocBuilder::new(true);
        b.add(SEC_NAMES, vec![1, 2, 3]);
        b.add(SEC_CCT, vec![]);
        b.add(SEC_BLOCK_BASE, vec![9; 40]);
        b.finish()
    }

    #[test]
    fn roundtrip_sections() {
        let bytes = sample();
        let toc = Toc::parse(&bytes).unwrap();
        assert!(toc.sparse);
        assert_eq!(toc.entries.len(), 3);
        assert_eq!(toc.section(&bytes, SEC_NAMES).unwrap(), &[1, 2, 3]);
        assert_eq!(toc.section(&bytes, SEC_CCT).unwrap(), &[] as &[u8]);
        assert_eq!(toc.section(&bytes, SEC_BLOCK_BASE).unwrap(), &[9; 40]);
        assert!(toc.section(&bytes, 99).is_err());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample();
        for len in 0..bytes.len() {
            assert!(Toc::parse(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let detected = match Toc::parse(&bad) {
                Err(_) => true,
                Ok(toc) => toc.entries.iter().any(|e| toc.section(&bad, e.id).is_err()),
            };
            assert!(detected, "flip at byte {i} slipped through");
        }
    }

    fn sample_aligned() -> Vec<u8> {
        let mut b = TocBuilder::new_aligned(true);
        b.add(SEC_NAMES, vec![1, 2, 3]);
        b.add(SEC_CCT_LINKS, vec![]);
        b.add(SEC_BLOCK_BASE, vec![9; 40]);
        b.finish()
    }

    #[test]
    fn aligned_sections_strip_padding_and_land_on_8() {
        let bytes = sample_aligned();
        let toc = Toc::parse(&bytes).unwrap();
        assert!(toc.aligned);
        assert_eq!(toc.section(&bytes, SEC_NAMES).unwrap(), &[1, 2, 3]);
        assert_eq!(toc.section(&bytes, SEC_CCT_LINKS).unwrap(), &[] as &[u8]);
        assert_eq!(toc.section(&bytes, SEC_BLOCK_BASE).unwrap(), &[9; 40]);
        for e in &toc.entries {
            let (off, body) = toc.raw_payload(&bytes, e.id).unwrap();
            assert_eq!(off % 8, 0, "section {} body misaligned", e.id);
            assert_eq!(&bytes[off..off + body.len()], body);
        }
        toc.verify_all(&bytes).unwrap();
    }

    #[test]
    fn aligned_bit_flips_are_detected_by_verify_all() {
        let bytes = sample_aligned();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let detected = match Toc::parse(&bad) {
                Err(_) => true,
                Ok(toc) => toc.verify_all(&bad).is_err(),
            };
            assert!(detected, "flip at byte {i} slipped through");
        }
    }

    #[test]
    fn duplicate_section_ids_are_rejected() {
        let mut b = TocBuilder::new(false);
        b.add(SEC_NAMES, vec![1]);
        b.add(SEC_NAMES, vec![2]);
        let bytes = b.finish();
        let err = Toc::parse(&bytes).unwrap_err();
        assert!(err.message.contains("duplicate"), "got: {}", err.message);
    }
}
