//! Container framing for format v2: a fixed-size header, a table of
//! contents, and checksummed sections that exactly tile the rest of the
//! file.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CPDB"
//! 4       1     version byte (2)
//! 5       1     flags (bit 0: sparse storage)
//! 6       2     reserved (zero)
//! 8       4     section count, u32 LE
//! 12      8     FNV-1a 64 checksum of bytes 0..12 and all TOC entries
//! 20      32×n  TOC entries: id u32, reserved u32, offset u64,
//!               length u64, payload checksum u64 (all LE)
//! ...           section payloads, in TOC order, back to back
//! ```
//!
//! Two framing invariants make corruption detection total:
//!
//! * **Tiling** — the first section starts right after the TOC, each
//!   section starts where the previous one ends, and the last one ends
//!   at the file's final byte. Any truncation (at *every* prefix
//!   length) therefore fails either the header/TOC bounds check or the
//!   tiling check before a single payload byte is decoded.
//! * **Checksums** — the header+TOC carry their own FNV-1a 64 digest,
//!   and every section records the digest of its payload, verified on
//!   first access. A bit flip anywhere in the file is caught by exactly
//!   one of these.
//!
//! Sections are identified by numeric id, not position, so readers skip
//! ids they do not understand and future revisions can append sections
//! without breaking v2 readers.

use crate::model::DbError;

/// Fixed ids for the well-known sections. Per-metric cost blocks start
/// at [`SEC_BLOCK_BASE`] (block for metric `m` has id `SEC_BLOCK_BASE + m`),
/// leaving room for more fixed sections below.
pub(crate) const SEC_NAMES: u32 = 1;
/// CCT topology (node records).
pub(crate) const SEC_CCT: u32 = 2;
/// Metric descriptors (name, unit, period, nnz, total) — no cost data.
pub(crate) const SEC_METRICS: u32 = 3;
/// Derived-metric definitions (name, formula).
pub(crate) const SEC_DERIVED: u32 = 4;
/// First per-metric cost block id.
pub(crate) const SEC_BLOCK_BASE: u32 = 16;

pub(crate) const VERSION_BYTE: u8 = 2;
const FLAG_SPARSE: u8 = 1;
const HEADER_LEN: usize = 20;
const ENTRY_LEN: usize = 32;
/// Checksummed prefix of the header (everything before the digest field).
const CHECKSUM_SPLIT: usize = 12;

/// FNV-1a 64-bit: tiny, dependency-free, and plenty for integrity
/// checking (this guards against rot and truncation, not adversaries).
pub(crate) fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One parsed TOC entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TocEntry {
    pub id: u32,
    pub offset: u64,
    pub len: u64,
    pub checksum: u64,
}

/// The parsed table of contents of a v2 file.
#[derive(Debug, Clone)]
pub(crate) struct Toc {
    pub sparse: bool,
    pub entries: Vec<TocEntry>,
}

impl Toc {
    /// Parse and fully validate the header + TOC of `data`: magic,
    /// version, header checksum, and the tiling invariant.
    pub fn parse(data: &[u8]) -> Result<Toc, DbError> {
        if data.len() < HEADER_LEN {
            return Err(DbError::new("truncated v2 header"));
        }
        if &data[..4] != super::bin::MAGIC {
            return Err(DbError::new("bad magic"));
        }
        if data[4] != VERSION_BYTE {
            return Err(DbError::new(format!("unsupported version {}", data[4])));
        }
        let flags = data[5];
        if flags & !FLAG_SPARSE != 0 {
            return Err(DbError::new(format!("unknown flags {flags:#x}")));
        }
        if data[6] != 0 || data[7] != 0 {
            return Err(DbError::new("reserved header bytes not zero"));
        }
        let count = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
        let toc_end = HEADER_LEN
            .checked_add(count.checked_mul(ENTRY_LEN).ok_or_else(toc_overflow)?)
            .ok_or_else(toc_overflow)?;
        if data.len() < toc_end {
            return Err(DbError::new("truncated table of contents"));
        }
        let stored = u64::from_le_bytes(data[CHECKSUM_SPLIT..HEADER_LEN].try_into().unwrap());
        let mut digest_input = Vec::with_capacity(CHECKSUM_SPLIT + toc_end - HEADER_LEN);
        digest_input.extend_from_slice(&data[..CHECKSUM_SPLIT]);
        digest_input.extend_from_slice(&data[HEADER_LEN..toc_end]);
        if fnv1a64(&digest_input) != stored {
            return Err(DbError::new("header/TOC checksum mismatch"));
        }

        let mut entries = Vec::with_capacity(count);
        let mut expect_offset = toc_end as u64;
        for i in 0..count {
            let e = &data[HEADER_LEN + i * ENTRY_LEN..HEADER_LEN + (i + 1) * ENTRY_LEN];
            let entry = TocEntry {
                id: u32::from_le_bytes(e[0..4].try_into().unwrap()),
                offset: u64::from_le_bytes(e[8..16].try_into().unwrap()),
                len: u64::from_le_bytes(e[16..24].try_into().unwrap()),
                checksum: u64::from_le_bytes(e[24..32].try_into().unwrap()),
            };
            // Sections tile the file: no gaps, no overlaps, no reordering.
            if entry.offset != expect_offset {
                return Err(DbError::new(format!(
                    "section {} at offset {} breaks tiling (expected {})",
                    entry.id, entry.offset, expect_offset
                )));
            }
            expect_offset = entry
                .offset
                .checked_add(entry.len)
                .ok_or_else(toc_overflow)?;
            if expect_offset > data.len() as u64 {
                return Err(DbError::new(format!(
                    "section {} overruns the file ({} > {})",
                    entry.id,
                    expect_offset,
                    data.len()
                )));
            }
            entries.push(entry);
        }
        if expect_offset != data.len() as u64 {
            return Err(DbError::new(format!(
                "{} trailing bytes after the last section",
                data.len() as u64 - expect_offset
            )));
        }
        Ok(Toc {
            sparse: flags & FLAG_SPARSE != 0,
            entries,
        })
    }

    /// Payload of the section with `id`, checksum-verified on access.
    pub fn section<'a>(&self, data: &'a [u8], id: u32) -> Result<&'a [u8], DbError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.id == id)
            .ok_or_else(|| DbError::new(format!("missing section {id}")))?;
        let payload = &data[entry.offset as usize..(entry.offset + entry.len) as usize];
        callpath_obs::count("expdb.toc.verify", 1);
        callpath_obs::observe("expdb.toc.section_bytes", payload.len() as u64);
        if fnv1a64(payload) != entry.checksum {
            callpath_obs::count("expdb.toc.verify_fail", 1);
            return Err(DbError::new(format!("section {id} checksum mismatch")));
        }
        Ok(payload)
    }
}

fn toc_overflow() -> DbError {
    DbError::new("table of contents length overflow")
}

/// Accumulates sections and emits the framed file.
pub(crate) struct TocBuilder {
    sparse: bool,
    sections: Vec<(u32, Vec<u8>)>,
}

impl TocBuilder {
    pub fn new(sparse: bool) -> Self {
        TocBuilder {
            sparse,
            sections: Vec::new(),
        }
    }

    pub fn add(&mut self, id: u32, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    pub fn finish(self) -> Vec<u8> {
        let toc_end = HEADER_LEN + self.sections.len() * ENTRY_LEN;
        let total: usize = toc_end + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(super::bin::MAGIC);
        out.push(VERSION_BYTE);
        out.push(if self.sparse { FLAG_SPARSE } else { 0 });
        out.extend_from_slice(&[0, 0]); // reserved
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // checksum, patched below

        let mut offset = toc_end as u64;
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // reserved
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        let mut digest_input = Vec::with_capacity(CHECKSUM_SPLIT + toc_end - HEADER_LEN);
        digest_input.extend_from_slice(&out[..CHECKSUM_SPLIT]);
        digest_input.extend_from_slice(&out[HEADER_LEN..toc_end]);
        let digest = fnv1a64(&digest_input).to_le_bytes();
        out[CHECKSUM_SPLIT..HEADER_LEN].copy_from_slice(&digest);

        for (_, payload) in self.sections {
            out.extend_from_slice(&payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = TocBuilder::new(true);
        b.add(SEC_NAMES, vec![1, 2, 3]);
        b.add(SEC_CCT, vec![]);
        b.add(SEC_BLOCK_BASE, vec![9; 40]);
        b.finish()
    }

    #[test]
    fn roundtrip_sections() {
        let bytes = sample();
        let toc = Toc::parse(&bytes).unwrap();
        assert!(toc.sparse);
        assert_eq!(toc.entries.len(), 3);
        assert_eq!(toc.section(&bytes, SEC_NAMES).unwrap(), &[1, 2, 3]);
        assert_eq!(toc.section(&bytes, SEC_CCT).unwrap(), &[] as &[u8]);
        assert_eq!(toc.section(&bytes, SEC_BLOCK_BASE).unwrap(), &[9; 40]);
        assert!(toc.section(&bytes, 99).is_err());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample();
        for len in 0..bytes.len() {
            assert!(Toc::parse(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let detected = match Toc::parse(&bad) {
                Err(_) => true,
                Ok(toc) => toc.entries.iter().any(|e| toc.section(&bad, e.id).is_err()),
            };
            assert!(detected, "flip at byte {i} slipped through");
        }
    }
}
