//! The lazy v2 reader: open decodes only the table of contents, name
//! tables, CCT topology, and metric *descriptors*; every metric column
//! stays as undecoded bytes until some view first reads it.
//!
//! [`open_lazy`] returns an ordinary [`Experiment`] whose
//! [`RawMetrics`] and [`ColumnSet`] have a [`ColumnSource`] attached
//! (the [`LazyShared`] state in this module, holding the raw file
//! bytes). The calling-context view then faults in exactly the columns
//! it sorts and displays; the callers/flat path goes through
//! `Experiment::attributions`, which faults the raw direct-cost
//! columns. Per column, faulting costs one checksum pass, one block
//! decode, and one Eq. 1/Eq. 2 attribution — each paid at most once.
//!
//! `LazyShared` keeps its **own copy** of the CCT (the `Experiment`
//! owns another) so attribution of a faulted column never needs a
//! back-reference into the experiment it serves. Topology is a small
//! fraction of a profile database, so the duplication is cheap; see
//! DESIGN.md §10.
//!
//! Batch consumers that will touch everything anyway (replay, diffing,
//! format conversion) should call [`decode_all`] right after opening:
//! it fans the per-column work across workers via `core::chunked`
//! instead of paying faults serially on first touch.

use crate::bin2::{self, MetricInfo};
use crate::image::FileImage;
use crate::model::{build_cct, DbError};
use crate::toc::{
    Toc, SEC_BLOCK_BASE, SEC_CCT, SEC_CCT_KINDS, SEC_CCT_LINKS, SEC_DERIVED, SEC_METRICS, SEC_NAMES,
};
use callpath_core::prelude::*;
use callpath_obs as obs;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Everything a lazily opened experiment needs to fault columns in:
/// the file image, the parsed TOC, a private copy of the topology,
/// and per-metric attribution caches.
#[derive(Debug)]
struct LazyShared {
    data: ByteImage,
    toc: Toc,
    /// Private topology copy for attributing faulted columns.
    cct: Cct,
    infos: Vec<MetricInfo>,
    /// Section id holding metric `m`'s cost block. For a plain
    /// database this is always `SEC_BLOCK_BASE + m`; an ensemble open
    /// with per-run drill-down columns maps the appended metrics to
    /// their run-block sections instead.
    sections: Vec<u32>,
    /// Parsed derived formulas, in derived-column order.
    exprs: Vec<Expr>,
    /// Whole-program value per column (from stored totals), for `@n`
    /// references in derived formulas.
    aggregates: Vec<f64>,
    storage: StorageKind,
    /// One attribution per metric, computed on the first fault of either
    /// of its presentation columns and shared by both.
    attrs: Vec<OnceLock<Result<Attribution, String>>>,
}

impl LazyShared {
    fn n_nodes(&self) -> u32 {
        self.cct.len() as u32
    }

    /// Decode (and range-check) metric `m`'s cost block into owned
    /// entries — the attribution path always needs owned data.
    fn block(&self, m: usize) -> Result<Vec<(u32, f64)>, String> {
        let _span = obs::span("expdb.block_decode");
        let payload = self
            .toc
            .section(self.data.bytes(), self.sections[m])
            .map_err(|e| e.message)?;
        obs::observe("expdb.block_bytes", payload.len() as u64);
        let info = &self.infos[m];
        if self.toc.aligned {
            bin2::read_block_v21(payload, info, self.n_nodes()).map_err(|e| e.message)
        } else {
            bin2::read_block(payload, info, self.n_nodes()).map_err(|e| e.message)
        }
    }

    /// Raw direct costs of metric `m` as [`ColumnData`]. For fixed-kind
    /// blocks in an aligned file this *borrows* the key/value arrays
    /// from the image (after verifying the block's checksum — paid once,
    /// on this first fault) instead of decoding them; everything else
    /// decodes to owned entries.
    fn raw_column(&self, m: usize) -> Result<ColumnData, String> {
        if !self.toc.aligned {
            return self.block(m).map(ColumnData::Owned);
        }
        let _span = obs::span("expdb.block_decode");
        let id = self.sections[m];
        let data = self.data.bytes();
        self.toc.verify_section(data, id).map_err(|e| e.message)?;
        let (off, body) = self.toc.raw_payload(data, id).map_err(|e| e.message)?;
        obs::observe("expdb.block_bytes", body.len() as u64);
        let info = &self.infos[m];
        if let Some(fb) = bin2::block_layout(body, info).map_err(|e| e.message)? {
            // Construction only fails for environmental reasons (a
            // big-endian host, an unaligned image); fall through to the
            // owned decode then.
            if let Ok(col) = MappedCol::new(
                self.data.clone(),
                off + fb.keys_off,
                off + fb.vals_off,
                fb.nnz,
            ) {
                check_keys(col.keys(), self.n_nodes())
                    .map_err(|reason| format!("metric '{}': {reason}", info.name))?;
                obs::count("expdb.lazy.fault.mapped", 1);
                return Ok(ColumnData::Mapped(col));
            }
        }
        bin2::read_block_v21(body, info, self.n_nodes())
            .map(ColumnData::Owned)
            .map_err(|e| e.message)
    }

    /// Attribution of metric `m`, computed once on first touch.
    fn attribution(&self, m: usize) -> Result<&Attribution, String> {
        self.attrs[m]
            .get_or_init(|| {
                let info = &self.infos[m];
                let costs: Vec<(NodeId, f64)> = self
                    .block(m)?
                    .into_iter()
                    .map(|(n, v)| (NodeId(n), v))
                    .collect();
                let mut raw = RawMetrics::new(self.storage);
                let id = raw.add_metric(MetricDesc::new(&info.name, &info.unit, info.period));
                raw.add_costs(id, &costs);
                Ok(attribute(&self.cct, &raw, id, self.storage))
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Sorted non-zero entries of presentation column `c`: the
    /// inclusive/exclusive projection of a metric, or a derived column
    /// evaluated from (recursively materialized) referenced columns.
    fn entries_of(&self, c: usize) -> Result<Vec<(u32, f64)>, String> {
        let metric_cols = self.infos.len() * 2;
        if c < metric_cols {
            let attr = self.attribution(c / 2)?;
            let v = if c.is_multiple_of(2) {
                &attr.inclusive
            } else {
                &attr.exclusive
            };
            return Ok(v.nonzero_sorted().collect());
        }
        let d = c - metric_cols;
        let expr = self
            .exprs
            .get(d)
            .ok_or_else(|| format!("no column {c} in this database"))?;
        // Materialize just the referenced columns densely. References
        // are validated at open to point strictly backwards, so the
        // recursion terminates.
        let n = self.cct.len();
        let refs = expr.references();
        let mut dense: Vec<(u32, Vec<f64>)> = Vec::with_capacity(refs.len());
        for &r in &refs {
            if r as usize >= c {
                return Err(format!("derived column {c} references column {r}"));
            }
            let mut v = vec![0.0; n];
            for (node, x) in self.entries_of(r as usize)? {
                v[node as usize] = x;
            }
            dense.push((r, v));
        }
        let mut row = vec![0.0; c];
        let mut out = Vec::new();
        for node in 0..n {
            for (r, v) in &dense {
                row[*r as usize] = v[node];
            }
            let val = expr.eval(&SliceContext {
                columns: &row,
                aggregates: &self.aggregates,
            });
            if val != 0.0 {
                out.push((node as u32, val));
            }
        }
        Ok(out)
    }
}

impl ColumnSource for LazyShared {
    fn load_column(&self, c: ColumnId) -> Result<ColumnData, String> {
        let _span = obs::span("expdb.column_fault");
        obs::count("expdb.lazy.fault.column", 1);
        self.entries_of(c.index())
            .map(ColumnData::Owned)
            .inspect_err(|reason| {
                obs::count("expdb.lazy.fault.failed", 1);
                obs::error(&format!("column {}: {reason}", c.index()));
            })
    }

    fn load_raw(&self, m: MetricId) -> Result<ColumnData, String> {
        let _span = obs::span("expdb.raw_fault");
        obs::count("expdb.lazy.fault.raw", 1);
        if m.index() >= self.infos.len() {
            return Err(format!("no metric {} in this database", m.index()));
        }
        self.raw_column(m.index()).inspect_err(|reason| {
            obs::count("expdb.lazy.fault.failed", 1);
            obs::error(&format!("metric {}: {reason}", m.index()));
        })
    }
}

/// Strictly ascending, in-range keys are what [`MappedCol::get`]'s
/// binary search relies on; checked once when a column is first
/// borrowed.
fn check_keys(keys: &[u32], n_nodes: u32) -> Result<(), String> {
    if keys.windows(2).any(|w| w[0] >= w[1]) {
        return Err("cost keys not strictly ascending".into());
    }
    if keys.last().is_some_and(|&k| k >= n_nodes) {
        return Err(format!("cost references a node beyond CCT size {n_nodes}"));
    }
    Ok(())
}

/// Open a v2/v2.1 container lazily from bytes already in memory: decode
/// the TOC, names, topology, metric descriptors and derived definitions
/// now; leave every cost block on the shelf until a view touches a
/// column computed from it. For aligned (v2.1) images the topology is
/// *borrowed*, not decoded — see [`open_lazy_path`] for the mmap-backed
/// variant that extends the same property to the file itself.
pub fn open_lazy(data: Vec<u8>) -> Result<Experiment, DbError> {
    open_image(FileImage::from_vec(data))
}

/// Open a database file lazily. With the `mmap` feature the file is
/// memory-mapped, so open-time cost is bounded by the sections actually
/// touched (header, TOC, names, descriptors, and — for v2.1 — one
/// structural pass over the topology arrays); cost blocks fault in
/// page by page as columns are first read.
pub fn open_lazy_path(path: &Path) -> Result<Experiment, DbError> {
    let image = FileImage::open(path).map_err(|e| DbError::new(format!("open failed: {e}")))?;
    open_image(image)
}

fn open_image(image: FileImage) -> Result<Experiment, DbError> {
    open_image_with(ByteImage::new(Arc::new(image)), Vec::new())
}

/// The full lazy-open path, optionally appending *extra* metrics whose
/// cost blocks live in non-standard sections — the ensemble reader
/// ([`crate::ens`]) uses this to graft per-run drill-down columns onto
/// an opened `.cpens` container. Each extra entry is a descriptor plus
/// the section id holding its block.
pub(crate) fn open_image_with(
    image: ByteImage,
    extra: Vec<(MetricInfo, u32)>,
) -> Result<Experiment, DbError> {
    let _span = obs::span("expdb.open_lazy");
    let data = image.bytes();
    let toc = Toc::parse(data)?;
    let (procs, files, modules) = bin2::read_names(toc.section(data, SEC_NAMES)?)?;
    let mut infos = bin2::read_metric_infos(toc.section(data, SEC_METRICS)?)?;
    let derived = bin2::read_derived(toc.section(data, SEC_DERIVED)?)?;
    let mut sections: Vec<u32> = (0..infos.len() as u32)
        .map(|i| SEC_BLOCK_BASE + i)
        .collect();
    for (info, sec) in extra {
        infos.push(info);
        sections.push(sec);
    }
    // Block payloads stay untouched, but their *existence* is checked
    // now so a missing column is an open-time error, not a render-time
    // surprise.
    for (info, &sec) in infos.iter().zip(&sections) {
        if !toc.contains(sec) {
            return Err(DbError::new(format!(
                "missing cost block for metric '{}'",
                info.name
            )));
        }
    }
    let cct = if toc.aligned {
        open_topology(&image, &toc, &procs, &files, &modules)?
    } else {
        let nodes = bin2::read_nodes(toc.section(data, SEC_CCT)?)?;
        build_cct(&procs, &files, &modules, &nodes)?
    };
    let storage = if toc.sparse {
        StorageKind::Sparse
    } else {
        StorageKind::Dense
    };

    let mut raw = RawMetrics::new(storage);
    let mut columns = ColumnSet::new(storage);
    let mut aggregates = Vec::with_capacity(infos.len() * 2 + derived.len());
    for (i, info) in infos.iter().enumerate() {
        let m = MetricId::from_usize(i);
        raw.add_metric(MetricDesc::new(&info.name, &info.unit, info.period));
        columns.add_column(ColumnDesc {
            name: format!("{} (I)", info.name),
            flavor: ColumnFlavor::Inclusive(m),
            visible: true,
        });
        columns.add_column(ColumnDesc {
            name: format!("{} (E)", info.name),
            flavor: ColumnFlavor::Exclusive(m),
            visible: true,
        });
        // Root inclusive == whole-program direct total, for both the
        // inclusive and the exclusive aggregate (cf. Experiment::build).
        aggregates.push(info.total);
        aggregates.push(info.total);
    }

    let mut exprs = Vec::with_capacity(derived.len());
    let mut derived_cols = Vec::with_capacity(derived.len());
    for (name, formula) in &derived {
        let expr = Expr::parse(formula)
            .map_err(|e| DbError::new(format!("derived metric '{name}': {e}")))?;
        let existing = columns.column_count() as u32;
        if let Some(&bad) = expr.references().iter().find(|&&r| r >= existing) {
            return Err(DbError::new(format!(
                "derived metric '{name}' references non-existent column ${bad}"
            )));
        }
        let agg = expr.eval(&SliceContext {
            columns: &aggregates,
            aggregates: &aggregates,
        });
        let c = columns.add_column(ColumnDesc {
            name: name.clone(),
            flavor: ColumnFlavor::Derived {
                formula: formula.clone(),
            },
            visible: true,
        });
        aggregates.push(agg);
        derived_cols.push((c, expr.clone()));
        exprs.push(expr);
    }

    let shared = Arc::new(LazyShared {
        data: image.clone(),
        toc,
        cct: cct.clone(),
        attrs: (0..infos.len()).map(|_| OnceLock::new()).collect(),
        infos,
        sections,
        exprs,
        aggregates: aggregates.clone(),
        storage,
    });
    raw.attach_source(shared.clone());
    columns.attach_source(shared);
    Ok(Experiment::open_lazy(
        cct,
        raw,
        columns,
        derived_cols,
        aggregates,
        storage,
    ))
}

/// Build the CCT for an aligned (v2.1) image by *borrowing* the
/// topology arrays instead of decoding node records.
///
/// The mapped sections are deliberately **not** checksummed here — an
/// FNV pass over tens of megabytes of topology would swamp the whole
/// open budget. Integrity comes in layers instead: the header/TOC
/// digest was already verified, [`MappedTopology::new`] makes the cheap
/// structural checks (bounds, alignment, tag validity), a single O(n)
/// pass below proves every parent precedes its child (which rules out
/// cycles and orphans), and out-of-range links read as "none" with
/// budget-guarded traversals. Batch consumers wanting bit-level
/// certainty call [`crate::verify_container`].
fn open_topology(
    image: &ByteImage,
    toc: &Toc,
    procs: &[String],
    files: &[String],
    modules: &[String],
) -> Result<Cct, DbError> {
    let data = image.bytes();
    let (links_off, links) = toc.raw_payload(data, SEC_CCT_LINKS)?;
    let (kinds_off, kinds) = toc.raw_payload(data, SEC_CCT_KINDS)?;
    let lay = bin2::topo_layout(links, kinds)?;
    for i in 1..lay.n {
        let off = lay.parent_off + 4 * i;
        let p = u32::from_le_bytes(links[off..off + 4].try_into().unwrap());
        if p as usize >= i {
            return Err(DbError::new(format!(
                "node {i}: parent {p} does not precede it"
            )));
        }
    }
    let mut names = NameTable::new();
    for p in procs {
        names.proc(p);
    }
    for f in files {
        names.file(f);
    }
    for m in modules {
        names.module(m);
    }
    let topo = match MappedTopology::new(
        image.clone(),
        lay.n,
        links_off + lay.parent_off,
        links_off + lay.first_child_off,
        links_off + lay.next_sibling_off,
        kinds_off + lay.tags_off,
        kinds_off + lay.fields_off,
        names.proc_count() as u32,
        names.file_count() as u32,
        names.module_count() as u32,
    ) {
        Ok(t) => t,
        // Environmental failures (big-endian host) and structural ones
        // alike: fall back to the eager decode, which either produces a
        // fully validated owned CCT or a precise error.
        Err(_) => {
            let nodes = bin2::read_topology_v21(links, kinds)?;
            return build_cct(procs, files, modules, &nodes);
        }
    };
    Ok(Cct::from_mapped(names, topo))
}

/// Materialize every column of a lazily opened experiment, fanning the
/// per-column block decode + attribution across `threads` workers
/// (0 = automatic). Batch consumers — replay, diffing, re-encoding —
/// call this once after [`open_lazy`] instead of paying faults
/// serially; on an eagerly built experiment it is a cheap no-op scan.
pub fn decode_all(exp: &Experiment, threads: usize) {
    let span = obs::span("expdb.decode_all");
    let parent = obs::current();
    // Touching any value of a column faults the whole column in; the
    // OnceLock slots make concurrent faults race-free.
    let cols: Vec<ColumnId> = exp.columns.columns().collect();
    chunked_map(&cols, threads, |_, chunk| {
        let _span = obs::span_under(parent, "expdb.decode_chunk");
        for &c in chunk {
            exp.columns.get(c, 0);
        }
    });
    let metrics: Vec<MetricId> = (0..exp.raw.metric_count())
        .map(MetricId::from_usize)
        .collect();
    chunked_map(&metrics, threads, |_, chunk| {
        let _span = obs::span_under(parent, "expdb.decode_chunk");
        for &m in chunk {
            let _ = exp.raw.column(m);
        }
    });
    drop(span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::sample_experiment;

    #[test]
    fn lazy_open_matches_eager_column_for_column() {
        let eager = sample_experiment();
        let bytes = crate::to_binary_v2(&eager);
        let lazy = open_lazy(bytes).unwrap();
        assert_eq!(lazy.cct.len(), eager.cct.len());
        assert_eq!(lazy.columns.column_count(), eager.columns.column_count());
        assert_eq!(lazy.columns.materialized_columns(), 0);
        for c in eager.columns.columns() {
            assert_eq!(lazy.columns.desc(c), eager.columns.desc(c));
            for n in 0..eager.cct.len() as u32 {
                assert_eq!(
                    lazy.columns.get(c, n),
                    eager.columns.get(c, n),
                    "column {c:?} node {n}"
                );
            }
        }
        assert_eq!(
            lazy.columns.materialized_columns(),
            eager.columns.column_count()
        );
        assert!(lazy.columns.lazy_error().is_none());
        for (a, b) in lazy.aggregates().iter().zip(eager.aggregates()) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn untouched_columns_stay_on_disk() {
        let bytes = crate::to_binary_v2(&sample_experiment());
        let lazy = open_lazy(bytes).unwrap();
        // Touch only the first metric's inclusive column: its sibling
        // exclusive column shares the attribution but stays
        // unmaterialized, and the second metric's block is never read.
        lazy.columns.get(ColumnId(0), 0);
        assert_eq!(lazy.columns.materialized_columns(), 1);
        assert_eq!(lazy.raw.materialized_metrics(), 0);
    }

    #[test]
    fn decode_all_materializes_everything() {
        let eager = sample_experiment();
        let bytes = crate::to_binary_v2(&eager);
        let lazy = open_lazy(bytes).unwrap();
        decode_all(&lazy, 0);
        assert_eq!(
            lazy.columns.materialized_columns(),
            eager.columns.column_count()
        );
        assert_eq!(lazy.raw.materialized_metrics(), eager.raw.metric_count());
        // Re-extracting the model from the lazily opened experiment
        // yields the exact bytes we opened (raw costs round-trip).
        assert_eq!(crate::to_binary_v2(&lazy), crate::to_binary_v2(&eager));
    }

    #[test]
    fn callers_view_path_faults_raw_metrics() {
        let eager = sample_experiment();
        let lazy = open_lazy(crate::to_binary_v2(&eager)).unwrap();
        let m = MetricId(0);
        let root = lazy.cct.root();
        assert_eq!(lazy.inclusive(m, root), eager.inclusive(m, root));
        assert_eq!(
            lazy.raw.materialized_metrics(),
            lazy.raw.metric_count(),
            "attributions() faults every raw metric"
        );
    }

    #[test]
    fn lazy_v21_open_matches_eager_column_for_column() {
        let eager = sample_experiment();
        let bytes = crate::to_binary_v21(&eager);
        let lazy = open_lazy(bytes).unwrap();
        assert!(lazy.cct.is_mapped(), "v2.1 topology should be borrowed");
        assert_eq!(lazy.cct.len(), eager.cct.len());
        for n in 0..eager.cct.len() as u32 {
            assert_eq!(lazy.cct.kind(NodeId(n)), eager.cct.kind(NodeId(n)));
            assert_eq!(lazy.cct.parent(NodeId(n)), eager.cct.parent(NodeId(n)));
        }
        for c in eager.columns.columns() {
            for n in 0..eager.cct.len() as u32 {
                assert_eq!(
                    lazy.columns.get(c, n),
                    eager.columns.get(c, n),
                    "column {c:?} node {n}"
                );
            }
        }
        assert!(lazy.columns.lazy_error().is_none());
        for m in 0..eager.raw.metric_count() {
            let m = MetricId::from_usize(m);
            for n in 0..eager.cct.len() as u32 {
                assert_eq!(lazy.raw.column(m).get(n), eager.raw.column(m).get(n));
            }
        }
    }

    #[test]
    fn v21_decode_all_round_trips_to_identical_bytes() {
        let eager = sample_experiment();
        let bytes = crate::to_binary_v21(&eager);
        let lazy = open_lazy(bytes.clone()).unwrap();
        decode_all(&lazy, 0);
        assert_eq!(crate::to_binary_v21(&lazy), bytes);
        assert_eq!(crate::to_binary_v21(&lazy), crate::to_binary_v21(&eager));
    }

    #[test]
    fn v21_corrupt_block_degrades_to_zeros_with_error() {
        let mut bytes = crate::to_binary_v21(&sample_experiment());
        let n = bytes.len();
        bytes[n - 3] ^= 0xff;
        let lazy = open_lazy(bytes).expect("topology is intact");
        let c = ColumnId(2); // second metric's inclusive column
        assert_eq!(lazy.columns.get(c, 0), 0.0);
        assert!(lazy.columns.lazy_error().unwrap().contains("checksum"));
    }

    #[test]
    fn v21_corrupt_topology_is_caught_by_verify_container() {
        let bytes = crate::to_binary_v21(&sample_experiment());
        crate::verify_container(&bytes).unwrap();
        let toc = Toc::parse(&bytes).unwrap();
        let links = toc
            .entries
            .iter()
            .find(|e| e.id == SEC_CCT_LINKS)
            .copied()
            .unwrap();
        let mut bad = bytes.clone();
        // Flip a bit inside the links payload: the lazy open does not
        // checksum borrowed topology, but verify_container must.
        bad[links.offset as usize + links.len as usize - 1] ^= 0x04;
        assert!(crate::verify_container(&bad).is_err());
    }

    #[test]
    fn corrupt_block_degrades_to_zeros_with_error() {
        let mut bytes = crate::to_binary_v2(&sample_experiment());
        // Flip a byte in the last section (a cost block), leaving the
        // header/TOC and topology sections intact so open succeeds.
        let n = bytes.len();
        bytes[n - 3] ^= 0xff;
        let lazy = open_lazy(bytes).expect("topology is intact");
        let c = ColumnId(2); // second metric's inclusive column
        assert_eq!(lazy.columns.get(c, 0), 0.0);
        assert!(lazy.columns.lazy_error().unwrap().contains("checksum"));
    }
}
