//! File images for the zero-copy read path: the bytes of a database,
//! held in memory whose **base address is 8-aligned** so that aligned
//! (v2.1) section bodies can be borrowed as `&[u32]` / `&[f64]` without
//! a decode step.
//!
//! Two sources of bytes:
//!
//! * [`FileImage::open`] — with the `mmap` feature on a Unix target,
//!   the file is mapped read-only (`MAP_PRIVATE`); pages fault in as
//!   sections are touched, so cold-open cost is bounded by the bytes
//!   actually read, not the file size. Mappings are page-aligned, which
//!   implies the 8-alignment the borrow path needs. Without the
//!   feature (or on mmap failure, or for empty files) it falls back to
//!   reading the file into memory.
//! * [`FileImage::from_vec`] — wraps bytes already in memory. If the
//!   allocation happens to be 8-aligned (the common case) it is used
//!   as-is; otherwise the bytes are copied once into an aligned buffer.
//!
//! The image is immutable for its whole life, so sharing it across
//! threads behind an `Arc` is sound even for the raw-pointer mmap
//! variant.

use std::fs;
use std::io;
use std::path::Path;

/// A `Vec<u64>`-backed byte buffer: the allocation is 8-aligned by
/// construction, so borrowing fixed-width arrays out of it is as valid
/// as borrowing from an mmap.
#[derive(Debug)]
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // View the zeroed u64 storage as bytes and copy in. u8 windows
        // always align, so prefix/suffix are empty.
        let dst = unsafe { words.align_to_mut::<u8>().1 };
        dst[..bytes.len()].copy_from_slice(bytes);
        AlignedBuf {
            words,
            len: bytes.len(),
        }
    }

    fn as_bytes(&self) -> &[u8] {
        let all = unsafe { self.words.align_to::<u8>().1 };
        &all[..self.len]
    }
}

#[derive(Debug)]
enum Repr {
    /// Bytes in a plain `Vec` that happened to be 8-aligned.
    Vec(Vec<u8>),
    /// Bytes copied into an explicitly aligned buffer.
    Aligned(AlignedBuf),
    /// A read-only private file mapping.
    #[cfg(all(feature = "mmap", unix))]
    Mapped { ptr: *const u8, len: usize },
}

/// The bytes of a database file in 8-aligned memory — see the module
/// docs for the owned vs mapped variants.
#[derive(Debug)]
pub struct FileImage {
    repr: Repr,
}

// SAFETY: every variant is an immutable byte region for the life of the
// image. The mmap variant is a MAP_PRIVATE read-only mapping that only
// `Drop` unmaps, so concurrent `&self` access from any thread is sound.
unsafe impl Send for FileImage {}
unsafe impl Sync for FileImage {}

impl FileImage {
    /// Wrap in-memory bytes, copying once into an aligned buffer only
    /// if the allocation is not already 8-aligned.
    pub fn from_vec(bytes: Vec<u8>) -> FileImage {
        let repr = if (bytes.as_ptr() as usize).is_multiple_of(8) {
            Repr::Vec(bytes)
        } else {
            Repr::Aligned(AlignedBuf::from_bytes(&bytes))
        };
        FileImage { repr }
    }

    /// Open `path`: mmap when the `mmap` feature is enabled on a Unix
    /// target, otherwise (or on any mapping failure) read into memory.
    pub fn open(path: &Path) -> io::Result<FileImage> {
        #[cfg(all(feature = "mmap", unix))]
        if let Some(img) = mmap_file(path)? {
            return Ok(img);
        }
        Ok(FileImage::from_vec(fs::read(path)?))
    }

    /// The file bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Vec(v) => v,
            Repr::Aligned(b) => b.as_bytes(),
            #[cfg(all(feature = "mmap", unix))]
            Repr::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// True when the bytes come from an mmap rather than owned memory.
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            #[cfg(all(feature = "mmap", unix))]
            Repr::Mapped { .. } => true,
            _ => false,
        }
    }
}

impl AsRef<[u8]> for FileImage {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(all(feature = "mmap", unix))]
impl Drop for FileImage {
    fn drop(&mut self) {
        if let Repr::Mapped { ptr, len } = self.repr {
            // SAFETY: ptr/len are exactly what mmap returned; the
            // mapping is unmapped at most once, here.
            unsafe {
                sys::munmap(ptr as *mut core::ffi::c_void, len);
            }
        }
    }
}

/// Minimal raw bindings — the workspace vendors no libc crate, and the
/// two calls we need have had stable Linux ABIs forever.
#[cfg(all(feature = "mmap", unix))]
mod sys {
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

/// Map `path` read-only. `Ok(None)` means "fall back to reading":
/// empty files (zero-length mappings are invalid) or a failed mmap.
#[cfg(all(feature = "mmap", unix))]
fn mmap_file(path: &Path) -> io::Result<Option<FileImage>> {
    use std::os::unix::io::AsRawFd;
    let file = fs::File::open(path)?;
    let len = file.metadata()?.len() as usize;
    if len == 0 {
        return Ok(None);
    }
    // SAFETY: fd is a valid open file, len is its current size, and we
    // request a fresh read-only private mapping (addr = null).
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 {
        return Ok(None);
    }
    // The fd can be closed once the mapping exists; the mapping keeps
    // the pages alive.
    Ok(Some(FileImage {
        repr: Repr::Mapped {
            ptr: ptr as *const u8,
            len,
        },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_is_8_aligned() {
        for n in [0usize, 1, 7, 8, 9, 4096] {
            let img = FileImage::from_vec(vec![0xabu8; n]);
            assert_eq!(img.bytes().len(), n);
            if n > 0 {
                assert_eq!(img.bytes().as_ptr() as usize % 8, 0);
                assert!(img.bytes().iter().all(|&b| b == 0xab));
            }
        }
    }

    #[test]
    fn misaligned_bytes_are_copied_not_lost() {
        // Force the copy path by slicing off one byte of a Vec.
        let v: Vec<u8> = (0..=255u8).collect();
        let img = FileImage {
            repr: Repr::Aligned(AlignedBuf::from_bytes(&v[1..])),
        };
        assert_eq!(img.bytes(), &v[1..]);
        assert_eq!(img.bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn open_reads_back_exact_bytes() {
        let dir = std::env::temp_dir().join("callpath-image-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.bin");
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let img = FileImage::open(&path).unwrap();
        assert_eq!(img.bytes(), &data[..]);
        assert_eq!(img.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(feature = "mmap", unix))]
    #[test]
    fn open_prefers_the_mapping() {
        let dir = std::env::temp_dir().join("callpath-image-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapped.bin");
        std::fs::write(&path, [1u8, 2, 3, 4]).unwrap();
        let img = FileImage::open(&path).unwrap();
        assert!(img.is_mapped());
        assert_eq!(img.bytes(), &[1, 2, 3, 4]);
        std::fs::remove_file(&path).ok();
    }
}
