//! The compact binary format, version 1 (the paper's Section IX
//! future-work item).
//!
//! Layout: magic `CPDB`, version varint, then sections in fixed order.
//! All integers are LEB128 varints; node ids within a cost list are
//! delta-coded (ascending), which is where most of the size win over XML
//! comes from; floats are IEEE-754 LE.
//!
//! The primitive and record codecs in this module are `pub(crate)`:
//! format v2 ([`crate::bin2`]) reuses them verbatim inside its sections,
//! so the two formats differ only in framing (v2 adds a table of
//! contents, checksums, and per-column blocks), never in value encoding.
//!
//! Decoding is hardened against hostile input: every length read from
//! the wire is capped by what the remaining bytes could possibly hold
//! (a node record is ≥ 3 bytes, a cost entry ≥ 9), so a length-lying
//! prefix cannot make us allocate gigabytes before the first "truncated"
//! error.

use crate::model::{DbError, DbMetric, DbModel, DbNode, DbScope};
use bytes::{Buf, BufMut};

pub(crate) const MAGIC: &[u8; 4] = b"CPDB";
const VERSION: u64 = 1;

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

pub(crate) fn get_varint(buf: &mut &[u8]) -> Result<u64, DbError> {
    let b = *buf;
    // Single-byte fast path: most ids, deltas and counts are < 128.
    if let [first, ..] = b {
        if first & 0x80 == 0 {
            *buf = &b[1..];
            return Ok(*first as u64);
        }
    }
    // Branchless multi-byte fast path: load 8 bytes at once, find the
    // terminator (a clear continuation bit) with one mask + one
    // trailing_zeros, then fold the 7-bit groups with shifts and masks
    // instead of a data-dependent loop. Encodings of 2..=8 bytes (56
    // payload bits — every node id and delta in practice) take this
    // path; 9/10-byte encodings and buffers with < 8 bytes left fall
    // through to the careful loop, which also owns the "truncated" and
    // "overflow" error semantics.
    if b.len() >= 8 {
        let x = u64::from_le_bytes(b[..8].try_into().unwrap());
        let stops = !x & 0x8080_8080_8080_8080;
        if stops != 0 {
            let n = stops.trailing_zeros() as usize / 8 + 1;
            let m = if n == 8 {
                x
            } else {
                x & ((1u64 << (8 * n)) - 1)
            };
            let v = (m & 0x7f)
                | ((m >> 1) & (0x7f << 7))
                | ((m >> 2) & (0x7f << 14))
                | ((m >> 3) & (0x7f << 21))
                | ((m >> 4) & (0x7f << 28))
                | ((m >> 5) & (0x7f << 35))
                | ((m >> 6) & (0x7f << 42))
                | ((m >> 7) & (0x7f << 49));
            *buf = &b[n..];
            return Ok(v);
        }
    }
    get_varint_slow(buf)
}

/// The byte-at-a-time LEB128 loop: reference semantics for the fast
/// path above, and the only decoder for encodings it cannot prove safe
/// (long encodings, short buffer tails).
fn get_varint_slow(buf: &mut &[u8]) -> Result<u64, DbError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() {
            return Err(DbError::new("truncated varint"));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(DbError::new("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Read a count-prefixed length and sanity-cap it: each of the counted
/// items occupies at least `min_item_bytes`, so a count claiming more
/// items than the remaining buffer could hold is corrupt. Rejecting it
/// here keeps `Vec::with_capacity(count)` proportional to the input
/// size instead of trusting an attacker-controlled varint.
pub(crate) fn get_count(
    buf: &mut &[u8],
    min_item_bytes: usize,
    what: &str,
) -> Result<usize, DbError> {
    let n = get_varint(buf)? as usize;
    if n > buf.remaining() / min_item_bytes.max(1) {
        return Err(DbError::new(format!(
            "{what} count {n} exceeds what {} remaining bytes can hold",
            buf.remaining()
        )));
    }
    Ok(n)
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.put_slice(s.as_bytes());
}

pub(crate) fn get_string(buf: &mut &[u8]) -> Result<String, DbError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DbError::new("truncated string"));
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| DbError::new("invalid utf-8 in string"))
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.put_f64_le(v);
}

pub(crate) fn get_f64(buf: &mut &[u8]) -> Result<f64, DbError> {
    if buf.remaining() < 8 {
        return Err(DbError::new("truncated f64"));
    }
    Ok(buf.get_f64_le())
}

pub(crate) fn put_strings(out: &mut Vec<u8>, items: &[String]) {
    put_varint(out, items.len() as u64);
    for s in items {
        put_string(out, s);
    }
}

pub(crate) fn get_strings(buf: &mut &[u8]) -> Result<Vec<String>, DbError> {
    let n = get_count(buf, 1, "string")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_string(buf)?);
    }
    Ok(out)
}

// Scope tags.
const TAG_FRAME: u64 = 0;
const TAG_FRAME_TOP: u64 = 1; // frame without a call site
const TAG_INLINED: u64 = 2;
const TAG_LOOP: u64 = 3;
const TAG_STMT: u64 = 4;

/// Serialize one CCT node record (scope tag, parent, scope fields).
pub(crate) fn put_node(out: &mut Vec<u8>, n: &DbNode) {
    match &n.scope {
        DbScope::Frame {
            proc,
            module,
            def_file,
            def_line,
            call_site,
        } => match call_site {
            Some((csf, csl)) => {
                put_varint(out, TAG_FRAME);
                put_varint(out, n.parent as u64);
                put_varint(out, *proc as u64);
                put_varint(out, *module as u64);
                put_varint(out, *def_file as u64);
                put_varint(out, *def_line as u64);
                put_varint(out, *csf as u64);
                put_varint(out, *csl as u64);
            }
            None => {
                put_varint(out, TAG_FRAME_TOP);
                put_varint(out, n.parent as u64);
                put_varint(out, *proc as u64);
                put_varint(out, *module as u64);
                put_varint(out, *def_file as u64);
                put_varint(out, *def_line as u64);
            }
        },
        DbScope::Inlined {
            proc,
            def_file,
            def_line,
            cs_file,
            cs_line,
        } => {
            put_varint(out, TAG_INLINED);
            put_varint(out, n.parent as u64);
            put_varint(out, *proc as u64);
            put_varint(out, *def_file as u64);
            put_varint(out, *def_line as u64);
            put_varint(out, *cs_file as u64);
            put_varint(out, *cs_line as u64);
        }
        DbScope::Loop { file, line } => {
            put_varint(out, TAG_LOOP);
            put_varint(out, n.parent as u64);
            put_varint(out, *file as u64);
            put_varint(out, *line as u64);
        }
        DbScope::Stmt { file, line } => {
            put_varint(out, TAG_STMT);
            put_varint(out, n.parent as u64);
            put_varint(out, *file as u64);
            put_varint(out, *line as u64);
        }
    }
}

fn get_u32(buf: &mut &[u8], what: &str) -> Result<u32, DbError> {
    let v = get_varint(buf)?;
    u32::try_from(v).map_err(|_| DbError::new(format!("{what} out of u32 range")))
}

/// Decode one CCT node record.
pub(crate) fn get_node(buf: &mut &[u8]) -> Result<DbNode, DbError> {
    let tag = get_varint(buf)?;
    let parent = get_u32(buf, "parent")?;
    let scope = match tag {
        TAG_FRAME | TAG_FRAME_TOP => {
            let proc = get_u32(buf, "proc")?;
            let module = get_u32(buf, "module")?;
            let def_file = get_u32(buf, "def_file")?;
            let def_line = get_u32(buf, "def_line")?;
            let call_site = if tag == TAG_FRAME {
                Some((get_u32(buf, "csf")?, get_u32(buf, "csl")?))
            } else {
                None
            };
            DbScope::Frame {
                proc,
                module,
                def_file,
                def_line,
                call_site,
            }
        }
        TAG_INLINED => DbScope::Inlined {
            proc: get_u32(buf, "proc")?,
            def_file: get_u32(buf, "def_file")?,
            def_line: get_u32(buf, "def_line")?,
            cs_file: get_u32(buf, "cs_file")?,
            cs_line: get_u32(buf, "cs_line")?,
        },
        TAG_LOOP => DbScope::Loop {
            file: get_u32(buf, "file")?,
            line: get_u32(buf, "line")?,
        },
        TAG_STMT => DbScope::Stmt {
            file: get_u32(buf, "file")?,
            line: get_u32(buf, "line")?,
        },
        other => return Err(DbError::new(format!("unknown scope tag {other}"))),
    };
    Ok(DbNode { parent, scope })
}

/// Serialize a sparse cost list: count, then delta-coded ascending node
/// ids with their IEEE-754 LE values.
pub(crate) fn put_costs(out: &mut Vec<u8>, costs: &[(u32, f64)]) {
    put_varint(out, costs.len() as u64);
    let mut prev = 0u32;
    for &(node, v) in costs {
        // Delta coding relies on ascending node ids.
        debug_assert!(node >= prev);
        put_varint(out, (node - prev) as u64);
        put_f64(out, v);
        prev = node;
    }
}

/// Decode a sparse cost list (inverse of [`put_costs`]).
pub(crate) fn get_costs(buf: &mut &[u8]) -> Result<Vec<(u32, f64)>, DbError> {
    // Each entry is ≥ 9 bytes: 1-byte minimum delta varint + 8-byte f64.
    let n_costs = get_count(buf, 9, "cost")?;
    let mut costs = Vec::with_capacity(n_costs);
    let mut prev = 0u32;
    for _ in 0..n_costs {
        let delta = get_u32(buf, "node delta")?;
        let node = prev
            .checked_add(delta)
            .ok_or_else(|| DbError::new("node id overflow"))?;
        let v = get_f64(buf)?;
        costs.push((node, v));
        prev = node;
    }
    Ok(costs)
}

/// Encode a model.
pub fn write(model: &DbModel) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.put_slice(MAGIC);
    put_varint(&mut out, VERSION);
    out.put_u8(model.sparse as u8);

    put_strings(&mut out, &model.procs);
    put_strings(&mut out, &model.files);
    put_strings(&mut out, &model.modules);

    put_varint(&mut out, model.nodes.len() as u64);
    for n in &model.nodes {
        put_node(&mut out, n);
    }

    put_varint(&mut out, model.metrics.len() as u64);
    for m in &model.metrics {
        put_string(&mut out, &m.name);
        put_string(&mut out, &m.unit);
        put_f64(&mut out, m.period);
        put_costs(&mut out, &m.costs);
    }

    put_varint(&mut out, model.derived.len() as u64);
    for (name, formula) in &model.derived {
        put_string(&mut out, name);
        put_string(&mut out, formula);
    }
    out
}

/// Decode a model.
pub fn read(data: &[u8]) -> Result<DbModel, DbError> {
    let mut buf = data;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(DbError::new("bad magic"));
    }
    buf.advance(4);
    let version = get_varint(&mut buf)?;
    if version != VERSION {
        return Err(DbError::new(format!("unsupported version {version}")));
    }
    if !buf.has_remaining() {
        return Err(DbError::new("truncated header"));
    }
    let sparse = buf.get_u8() != 0;

    let procs = get_strings(&mut buf)?;
    let files = get_strings(&mut buf)?;
    let modules = get_strings(&mut buf)?;

    // A node record is ≥ 3 bytes (tag, parent, and at least one field).
    let n_nodes = get_count(&mut buf, 3, "node")?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(get_node(&mut buf)?);
    }

    // A metric record is ≥ 11 bytes (two length-prefixed strings, the
    // period f64, a cost count).
    let n_metrics = get_count(&mut buf, 11, "metric")?;
    let mut metrics = Vec::with_capacity(n_metrics);
    for _ in 0..n_metrics {
        let name = get_string(&mut buf)?;
        let unit = get_string(&mut buf)?;
        let period = get_f64(&mut buf)?;
        let costs = get_costs(&mut buf)?;
        metrics.push(DbMetric {
            name,
            unit,
            period,
            costs,
        });
    }

    let n_derived = get_count(&mut buf, 2, "derived metric")?;
    let mut derived = Vec::with_capacity(n_derived);
    for _ in 0..n_derived {
        let name = get_string(&mut buf)?;
        let formula = get_string(&mut buf)?;
        derived.push((name, formula));
    }

    if buf.has_remaining() {
        return Err(DbError::new(format!(
            "{} trailing bytes after experiment",
            buf.remaining()
        )));
    }

    Ok(DbModel {
        procs,
        files,
        modules,
        nodes,
        metrics,
        derived,
        sparse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::sample_experiment;
    use crate::DbModel;

    #[test]
    fn roundtrip() {
        let exp = sample_experiment();
        let model = DbModel::from_experiment(&exp);
        let bytes = write(&model);
        let parsed = read(&bytes).unwrap();
        assert_eq!(parsed, model);
    }

    #[test]
    fn full_experiment_roundtrip() {
        let exp = sample_experiment();
        let bytes = crate::to_binary(&exp);
        let rebuilt = crate::from_binary(&bytes).unwrap();
        assert_eq!(crate::to_binary(&rebuilt), bytes);
    }

    #[test]
    fn binary_is_smaller_than_xml() {
        let exp = sample_experiment();
        let xml = crate::to_xml(&exp);
        let bin = crate::to_binary(&exp);
        assert!(
            bin.len() * 2 < xml.len(),
            "binary {} vs xml {}",
            bin.len(),
            xml.len()
        );
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut buf = out.as_slice();
            assert_eq!(get_varint(&mut buf).unwrap(), v);
            assert!(buf.is_empty());
        }
    }

    /// The branchless fast path must agree with the byte-at-a-time loop
    /// on every encoding length, at every buffer-tail length (shorter
    /// tails route around the 8-byte load), and on non-canonical
    /// (overlong) encodings.
    #[test]
    fn varint_fast_path_matches_slow_path() {
        let mut values: Vec<u64> = vec![u64::MAX];
        for bits in 0..64 {
            values.push(1u64 << bits);
            values.push((1u64 << bits) - 1);
            values.push((1u64 << bits) | 0x55);
        }
        for &v in &values {
            let mut enc = Vec::new();
            put_varint(&mut enc, v);
            // Vary the padding after the varint so both the >= 8-byte
            // fast path and the short-tail fallback are exercised.
            for pad in 0..10 {
                let mut bytes = enc.clone();
                bytes.extend(std::iter::repeat_n(0xeeu8, pad));
                let mut fast = bytes.as_slice();
                let mut slow = bytes.as_slice();
                assert_eq!(get_varint(&mut fast).unwrap(), v);
                assert_eq!(get_varint_slow(&mut slow).unwrap(), v);
                assert_eq!(fast.len(), slow.len(), "consumed lengths differ for {v}");
            }
        }
        // Overlong encodings (trailing zero groups) decode identically.
        for overlong in [
            vec![0x80u8, 0x00],
            vec![0x80, 0x80, 0x00],
            vec![0xff, 0x80, 0x80, 0x80, 0x00],
        ] {
            let mut fast = overlong.as_slice();
            let mut slow = overlong.as_slice();
            assert_eq!(
                get_varint(&mut fast).unwrap(),
                get_varint_slow(&mut slow).unwrap()
            );
            assert_eq!(fast.len(), slow.len());
        }
        // Truncated and overflowing inputs keep their exact errors.
        let mut t = &[0x80u8, 0x80][..];
        assert!(get_varint(&mut t)
            .unwrap_err()
            .message
            .contains("truncated"));
        let mut o = &[0xffu8; 11][..];
        assert!(get_varint(&mut o).unwrap_err().message.contains("overflow"));
    }

    #[test]
    fn rejects_corruption() {
        let exp = sample_experiment();
        let bytes = crate::to_binary(&exp);
        assert!(read(&bytes[..3]).is_err(), "truncated magic");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(read(&bad).is_err(), "bad magic");
        assert!(read(&bytes[..bytes.len() / 2]).is_err(), "truncated body");
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(read(&extended).is_err(), "trailing bytes");
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = crate::to_binary(&sample_experiment());
        bytes[4] = 99; // version varint
        assert!(read(&bytes).is_err());
    }

    #[test]
    fn rejects_length_lying_counts_without_huge_allocs() {
        // A tiny buffer claiming 2^40 nodes must fail fast on the count
        // check, not attempt a giant reservation.
        let mut bytes = Vec::new();
        bytes.put_slice(MAGIC);
        put_varint(&mut bytes, VERSION);
        bytes.put_u8(0); // dense
        put_strings(&mut bytes, &[]); // procs
        put_strings(&mut bytes, &[]); // files
        put_strings(&mut bytes, &[]); // modules
        put_varint(&mut bytes, 1 << 40); // node count lie
        let err = read(&bytes).unwrap_err();
        assert!(err.message.contains("count"), "got: {}", err.message);
    }
}
