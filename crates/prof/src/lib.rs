#![warn(missing_docs)]
//! # callpath-prof
//!
//! Correlation of dynamic call path profiles with static program
//! structure — the `hpcprof` substitute.
//!
//! The [`Correlator`] fuses a [`RawProfile`](callpath_profiler::RawProfile)
//! (a trie of call-site addresses with per-instruction sample counts) with
//! a recovered [`Structure`](callpath_structure::Structure) into the
//! paper's *canonical calling context tree*: procedure frames interleaved
//! with the loops and inlined bodies that contain each call site and each
//! sampled instruction (Section III-D, IV-A).
//!
//! Multiple profiles (ranks, threads) can be correlated into one canonical
//! CCT; [`Correlator::add`] returns the per-node direct costs of each
//! profile so `callpath-parallel` can compute per-rank statistics, and
//! [`Correlator::finish`] produces the aggregated
//! [`Experiment`](callpath_core::experiment::Experiment).
//!
//! For many ranks, [`ParallelCorrelator`] shards the profiles across
//! worker threads and merges the shard CCTs with a deterministic replay
//! that reproduces the sequential correlator's node ids exactly.

pub mod correlate;
pub mod object_view;
pub mod parallel;

pub use correlate::{correlate, Correlator, PerNodeCosts};
pub use object_view::{object_view, render_object_view, ObjectLine, ObjectView};
#[doc(hidden)]
pub use parallel::correlate_replay_baseline;
pub use parallel::{IngestMode, ParallelCorrelator, SHARD_CUTOVER};
