//! Parallel profile ingestion: shard N rank profiles across the worker
//! pool, correlate each shard against its own local CCT, then merge the
//! shards pairwise — concurrently, left-to-right — so the canonical
//! CCT, node ids included, is **identical to what the sequential
//! [`Correlator`] produces**.
//!
//! ## Why the result is byte-identical
//!
//! The sequential correlator's node ids are determined entirely by the
//! order of its `find_or_add_child` calls: walking rank 0's profile,
//! then rank 1's, and so on, each walk visiting frames and static
//! scopes in a fixed DFS order that depends only on the profile, the
//! structure, and the interned name ids. Four properties make the
//! parallel path equivalent:
//!
//! 1. **Shared interned name table.** Every correlator over the same
//!    structure builds the identical name table, because
//!    [`Correlator::new`] interns all names — including inlined callee
//!    names — in deterministic structure order before any profile is
//!    walked. Scope kinds therefore compare equal across shards by
//!    value.
//! 2. **Pruned visit journals.** Each worker correlates a *contiguous*
//!    run of ranks (chunk 0 = ranks `0..k`, chunk 1 the next run, ...)
//!    while recording only the `(parent, child)` calls that **created**
//!    `child`. Repeat visits find an existing node, so replaying them
//!    is a no-op — dropping them loses nothing. What remains is every
//!    non-root shard node, once, in creation order, parents before
//!    children: the minimal recipe that rebuilds the shard's CCT with
//!    the same ids.
//! 3. **Pairwise merge preserves creation order.** Merging shard B into
//!    shard A replays B's pruned journal against A's CCT. Nodes
//!    already reachable in A map onto A's ids; genuinely new paths are
//!    created in B-journal order — exactly the order a sequential walk
//!    of B's ranks *after* A's ranks would first encounter them. The
//!    merged journal is A's journal followed by the newly created
//!    edges (in merged-local ids), so the invariant holds at every
//!    level of the merge tree. Adjacent shards merge concurrently on
//!    the pool, but always left into right-neighbor order, so the
//!    final CCT equals shard 0's CCT extended in sequential creation
//!    order — and shard 0's ids are the sequential ids for its ranks
//!    by construction. No final replay pass is needed.
//! 4. **Rank-order totals fold.** f64 addition is not associative, so
//!    the per-node totals are *not* summed during the concurrent
//!    merges. Per-rank costs are remapped to canonical ids on the pool
//!    (cheap, exact — a table lookup per entry), then folded into a
//!    fresh totals map in ascending rank order on the reducing thread:
//!    the same additions in the same order as a sequential `add` loop,
//!    hence bit-identical column values.
//!
//! The pre-pruning reduction — full journals replayed serially against
//! one canonical correlator, O(total visits) on one thread — survives
//! as [`correlate_replay_baseline`] so the thread-scaling bench can
//! prove the new path does strictly less work even on one core.

use crate::correlate::{finish_parts, fold_costs_into, Correlator, PerNodeCosts};
use callpath_core::prelude::*;
use callpath_profiler::{Counter, RawProfile};
use callpath_structure::Structure;

/// One worker's output: the shard-local CCT, the pruned journal that
/// rebuilds it, and each rank's direct costs in shard-local node ids.
struct Shard {
    cct: Cct,
    /// First-appearance `(parent, child)` edges, creation order: every
    /// non-root node of `cct` appears exactly once as `child`, after
    /// its parent.
    journal: Vec<(NodeId, NodeId)>,
    per_rank: Vec<PerNodeCosts>,
}

/// Below this many profiles the journal/replay machinery costs more
/// than it saves; fall straight through to the sequential correlator.
pub const SHARD_CUTOVER: usize = 4;

/// How [`ParallelCorrelator::correlate`] will actually run for a given
/// input size: a plain sequential `add` loop, or sharded fan-out with
/// pairwise merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// One correlator fed rank-by-rank on the calling thread.
    Sequential,
    /// Contiguous rank shards on pool workers, merged pairwise.
    Sharded,
}

impl IngestMode {
    /// Stable lowercase name, for bench records and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            IngestMode::Sequential => "sequential",
            IngestMode::Sharded => "sharded",
        }
    }
}

/// Sharded, deterministic parallel replacement for feeding N profiles
/// through one [`Correlator`].
pub struct ParallelCorrelator<'s> {
    structure: &'s Structure,
    periods: [u64; Counter::COUNT],
    threads: usize,
}

/// Merge `right` into `left`: replay `right`'s pruned journal against
/// `left`'s CCT, extend `left`'s journal with the edges that created
/// new nodes, and remap `right`'s per-rank costs into the merged ids.
/// `left`'s node ids are stable across the merge, so its journal and
/// per-rank costs carry over untouched.
fn merge_pair(mut left: Shard, right: Shard) -> Shard {
    let mut remap: Vec<NodeId> = vec![NodeId(u32::MAX); right.cct.len()];
    remap[right.cct.root().index()] = left.cct.root();
    for &(parent, child) in &right.journal {
        let kind = right.cct.kind(child);
        let merged_parent = remap[parent.index()];
        debug_assert_ne!(
            merged_parent.0,
            u32::MAX,
            "journal references unseen parent"
        );
        let (merged_child, created) = left.cct.find_or_add_child_tracked(merged_parent, kind);
        remap[child.index()] = merged_child;
        if created {
            left.journal.push((merged_parent, merged_child));
        }
    }
    for costs in right.per_rank {
        left.per_rank.push(
            costs
                .into_iter()
                .map(|(n, cs)| (remap[n.index()], cs))
                .collect(),
        );
    }
    left
}

impl<'s> ParallelCorrelator<'s> {
    /// A parallel correlator choosing its worker count automatically.
    /// `periods` has the same meaning as for [`Correlator::new`].
    pub fn new(structure: &'s Structure, periods: [u64; Counter::COUNT]) -> Self {
        ParallelCorrelator {
            structure,
            periods,
            threads: 0,
        }
    }

    /// Use exactly `threads` workers (0 = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The mode [`Self::correlate`] picks for `n_profiles` inputs:
    /// sequential when only one worker would run or the input is below
    /// [`SHARD_CUTOVER`], sharded otherwise.
    pub fn mode_for(&self, n_profiles: usize) -> IngestMode {
        if resolve_threads(self.threads) <= 1 || n_profiles < SHARD_CUTOVER {
            IngestMode::Sequential
        } else {
            IngestMode::Sharded
        }
    }

    /// Correlate every profile (rank r = `profiles[r]`) and build the
    /// experiment. Returns the experiment plus each rank's direct
    /// per-node costs in canonical node ids — the same pair of results
    /// the sequential path produces, in the same order.
    pub fn correlate(
        &self,
        profiles: &[RawProfile],
        storage: StorageKind,
    ) -> (Experiment, Vec<PerNodeCosts>) {
        let _span = callpath_obs::span("prof.correlate");
        callpath_obs::count("prof.profiles_ingested", profiles.len() as u64);
        if self.mode_for(profiles.len()) == IngestMode::Sequential {
            // One worker (or a tiny input): the journal/merge round
            // trip is pure overhead, so feed a plain correlator.
            let mut corr = Correlator::new(self.structure, self.periods);
            let out: Vec<PerNodeCosts> = profiles.iter().map(|p| corr.add(p)).collect();
            return (corr.finish(storage), out);
        }

        // Fan out: contiguous rank chunks, one journaling correlator per
        // worker. chunked_map returns shards in ascending rank order.
        // Pool workers have no span context of their own, so each shard
        // nests explicitly under this call's span.
        let parent = callpath_obs::current();
        let shards: Vec<Shard> = chunked_map(profiles, self.threads, |_ci, batch| {
            let _span = callpath_obs::span_under(parent, "prof.shard_correlate");
            let mut corr = Correlator::with_journal(self.structure, self.periods);
            let per_rank: Vec<PerNodeCosts> = batch.iter().map(|p| corr.add(p)).collect();
            Shard {
                journal: corr.journal.take().unwrap_or_default(),
                cct: corr.cct,
                per_rank,
            }
        });

        // Reduce: merge adjacent shards pairwise, level by level, each
        // pair concurrently on the pool (`core::pool::reduce_pairwise`
        // keeps left-to-right operand order and passes the odd shard
        // out through unchanged), so the surviving shard's CCT and
        // per-rank ids are the sequential ones (see module docs).
        let _merge = callpath_obs::span("prof.merge_tree");
        let canon = reduce_pairwise(shards, |a, b| {
            let _span = callpath_obs::span_under(parent, "prof.merge_pair");
            callpath_obs::count("prof.merge.pairs", 1);
            merge_pair(a, b)
        })
        .expect("sharded mode implies >= 1 shard");

        // Fold totals in ascending rank order — the exact sequential
        // accumulation order, so every f64 sum rounds identically.
        let mut totals = std::collections::HashMap::new();
        for costs in &canon.per_rank {
            fold_costs_into(&mut totals, costs);
        }
        (
            finish_parts(canon.cct, totals, self.periods, storage),
            canon.per_rank,
        )
    }
}

/// The pre-pruning reduction this PR replaced, kept compilable so the
/// thread-scaling bench can gate the new path against it: every shard
/// records its **full** journal (repeat visits included) and one
/// thread replays all of them — O(total visits) — against a canonical
/// correlator. Not part of the public API surface; do not use outside
/// benchmarks.
#[doc(hidden)]
pub fn correlate_replay_baseline(
    structure: &Structure,
    periods: [u64; Counter::COUNT],
    profiles: &[RawProfile],
    threads: usize,
    storage: StorageKind,
) -> (Experiment, Vec<PerNodeCosts>) {
    // An unpruned shard: CCT, full visit journal, per-rank costs.
    type FullShard = (Cct, Vec<(NodeId, NodeId)>, Vec<PerNodeCosts>);
    let shards: Vec<FullShard> = chunked_map(profiles, threads, |_ci, batch| {
        let mut corr = Correlator::with_full_journal(structure, periods);
        let per_rank: Vec<PerNodeCosts> = batch.iter().map(|p| corr.add(p)).collect();
        (corr.cct, corr.journal.take().unwrap_or_default(), per_rank)
    });
    let mut canon = Correlator::new(structure, periods);
    let mut out: Vec<PerNodeCosts> = Vec::with_capacity(profiles.len());
    for (cct, journal, per_rank) in shards {
        let mut remap: Vec<NodeId> = vec![NodeId(u32::MAX); cct.len()];
        remap[cct.root().index()] = canon.cct.root();
        for &(parent, child) in &journal {
            let kind = cct.kind(child);
            let canon_parent = remap[parent.index()];
            remap[child.index()] = canon.cct.find_or_add_child(canon_parent, kind);
        }
        for costs in per_rank {
            let mapped: PerNodeCosts = costs
                .into_iter()
                .map(|(n, cs)| (remap[n.index()], cs))
                .collect();
            canon.fold_costs(&mapped);
            out.push(mapped);
        }
    }
    (canon.finish(storage), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{execute, lower, Costs, ExecConfig, Op, ProgramBuilder};
    use callpath_structure::recover;

    fn profiles_for(
        n_ranks: usize,
    ) -> (callpath_structure::Structure, Vec<RawProfile>, ExecConfig) {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let lib = b.file("lib.h");
        let helper = b.declare("helper", lib, 50);
        let work = b.declare("work", f, 10);
        let main = b.declare("main", f, 1);
        b.body(helper, vec![Op::work(51, Costs::cycles(4_000))]);
        b.body(
            work,
            vec![
                Op::looped(11, 8, vec![Op::work(12, Costs::cycles(2_000))]),
                Op::call_inline(14, helper),
            ],
        );
        b.body(
            main,
            vec![Op::call(2, work), Op::call_recursive(3, main, 2)],
        );
        b.entry(main);
        let bin = lower(&b.build());
        let cfg = ExecConfig {
            jitter_seed: Some(11),
            ..ExecConfig::single(Counter::Cycles, 509)
        };
        let profiles: Vec<RawProfile> = (0..n_ranks)
            .map(|r| {
                let rank_cfg = ExecConfig {
                    work_scale: 1.0 + r as f64 * 0.3,
                    jitter_seed: Some(11 + r as u64),
                    ..cfg.clone()
                };
                execute(&bin, &rank_cfg).unwrap().profile
            })
            .collect();
        (recover(&bin).unwrap(), profiles, cfg)
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (structure, profiles, cfg) = profiles_for(9);
        let mut seq = Correlator::new(&structure, cfg.periods);
        let seq_costs: Vec<PerNodeCosts> = profiles.iter().map(|p| seq.add(p)).collect();
        let seq_exp = seq.finish(StorageKind::Dense);

        for threads in [1, 2, 4, 8] {
            let (par_exp, par_costs) = ParallelCorrelator::new(&structure, cfg.periods)
                .with_threads(threads)
                .correlate(&profiles, StorageKind::Dense);
            assert_eq!(par_exp.cct.len(), seq_exp.cct.len(), "threads={threads}");
            for n in par_exp.cct.all_nodes() {
                assert_eq!(
                    par_exp.cct.kind(n),
                    seq_exp.cct.kind(n),
                    "threads={threads} node {n:?}"
                );
                assert_eq!(par_exp.cct.parent(n), seq_exp.cct.parent(n));
            }
            assert_eq!(par_costs, seq_costs, "threads={threads}");
            for c in seq_exp.columns.columns() {
                let a: Vec<(u32, f64)> = seq_exp.columns.vec(c).nonzero_sorted().collect();
                let b: Vec<(u32, f64)> = par_exp.columns.vec(c).nonzero_sorted().collect();
                assert_eq!(a, b, "threads={threads} column {c:?}");
            }
        }
    }

    #[test]
    fn replay_baseline_also_matches_sequential() {
        // The bench gate compares new-vs-baseline timings; that only
        // means something if both compute the same result.
        let (structure, profiles, cfg) = profiles_for(7);
        let mut seq = Correlator::new(&structure, cfg.periods);
        let seq_costs: Vec<PerNodeCosts> = profiles.iter().map(|p| seq.add(p)).collect();
        let seq_exp = seq.finish(StorageKind::Dense);
        let (base_exp, base_costs) =
            correlate_replay_baseline(&structure, cfg.periods, &profiles, 4, StorageKind::Dense);
        assert_eq!(base_costs, seq_costs);
        assert_eq!(base_exp.cct.len(), seq_exp.cct.len());
        for c in seq_exp.columns.columns() {
            let a: Vec<(u32, f64)> = seq_exp.columns.vec(c).nonzero_sorted().collect();
            let b: Vec<(u32, f64)> = base_exp.columns.vec(c).nonzero_sorted().collect();
            assert_eq!(a, b, "column {c:?}");
        }
    }

    #[test]
    fn pruned_journal_is_one_entry_per_non_root_node() {
        let (structure, profiles, cfg) = profiles_for(6);
        let mut pruned = Correlator::with_journal(&structure, cfg.periods);
        let mut full = Correlator::with_full_journal(&structure, cfg.periods);
        for p in &profiles {
            pruned.add(p);
            full.add(p);
        }
        let pj = pruned.journal.take().unwrap();
        let fj = full.journal.take().unwrap();
        assert_eq!(
            pj.len(),
            pruned.cct.len() - 1,
            "pruned journal must hold every non-root node exactly once"
        );
        assert!(
            fj.len() > pj.len(),
            "repeat visits must make the full journal strictly larger \
             (full {} vs pruned {})",
            fj.len(),
            pj.len()
        );
        // The pruned journal is the subsequence of first appearances:
        // same set of children, creation order, parents before children.
        let mut seen = vec![false; pruned.cct.len()];
        seen[pruned.cct.root().index()] = true;
        for &(parent, child) in &pj {
            assert!(seen[parent.index()], "parent created after child");
            assert!(!seen[child.index()], "child journaled twice");
            seen[child.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mode_cuts_over_from_sequential_to_sharded() {
        let (structure, _, cfg) = profiles_for(1);
        let multi = ParallelCorrelator::new(&structure, cfg.periods).with_threads(4);
        assert_eq!(multi.mode_for(SHARD_CUTOVER - 1), IngestMode::Sequential);
        assert_eq!(multi.mode_for(SHARD_CUTOVER), IngestMode::Sharded);
        // A single worker never shards, whatever the input size.
        let single = ParallelCorrelator::new(&structure, cfg.periods).with_threads(1);
        assert_eq!(single.mode_for(1_000), IngestMode::Sequential);
    }

    #[test]
    fn small_inputs_fall_back_to_the_sequential_path() {
        // Below the cutover the fallback must still produce the exact
        // sequential result (it IS the sequential path).
        let (structure, profiles, cfg) = profiles_for(SHARD_CUTOVER - 1);
        let mut seq = Correlator::new(&structure, cfg.periods);
        let seq_costs: Vec<PerNodeCosts> = profiles.iter().map(|p| seq.add(p)).collect();
        let seq_exp = seq.finish(StorageKind::Dense);
        let par = ParallelCorrelator::new(&structure, cfg.periods).with_threads(8);
        assert_eq!(par.mode_for(profiles.len()), IngestMode::Sequential);
        let (par_exp, par_costs) = par.correlate(&profiles, StorageKind::Dense);
        assert_eq!(par_costs, seq_costs);
        assert_eq!(par_exp.cct.len(), seq_exp.cct.len());
    }

    #[test]
    fn csr_storage_round_trips_through_parallel_ingestion() {
        let (structure, profiles, cfg) = profiles_for(5);
        let (dense, _) = ParallelCorrelator::new(&structure, cfg.periods)
            .with_threads(2)
            .correlate(&profiles, StorageKind::Dense);
        let (csr, _) = ParallelCorrelator::new(&structure, cfg.periods)
            .with_threads(2)
            .correlate(&profiles, StorageKind::Csr);
        assert_eq!(csr.storage(), StorageKind::Csr);
        for c in dense.columns.columns() {
            let a: Vec<(u32, f64)> = dense.columns.vec(c).nonzero_sorted().collect();
            let b: Vec<(u32, f64)> = csr.columns.vec(c).nonzero_sorted().collect();
            assert_eq!(a, b, "column {c:?}");
        }
    }
}
