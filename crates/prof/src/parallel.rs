//! Parallel profile ingestion: shard N rank profiles across worker
//! threads, correlate each shard against its own local CCT, then merge
//! the shards with a deterministic replay so the canonical CCT — node
//! ids included — is **identical to what the sequential [`Correlator`]
//! produces**.
//!
//! ## Why the result is byte-identical
//!
//! The sequential correlator's node ids are determined entirely by the
//! order of its `find_or_add_child` calls: walking rank 0's profile,
//! then rank 1's, and so on, each walk visiting frames and static
//! scopes in a fixed DFS order that depends only on the profile, the
//! structure, and the interned name ids. Three properties make the
//! parallel path replayable:
//!
//! 1. **Shared interned name table.** Every correlator over the same
//!    structure builds the identical name table, because
//!    [`Correlator::new`] interns all names — including inlined callee
//!    names — in deterministic structure order before any profile is
//!    walked. Scope kinds therefore compare equal across shards by
//!    value.
//! 2. **Visit journals.** Each worker correlates a *contiguous* run of
//!    ranks (chunk 0 = ranks `0..k`, chunk 1 the next run, ...) while
//!    recording its ordered `(parent, child)` `find_or_add_child`
//!    calls. A shard's journal is exactly the call sequence the
//!    sequential correlator would issue for those ranks.
//! 3. **Rank-order reduction.** The reduction replays the journals
//!    against a fresh canonical correlator in ascending chunk order.
//!    The canonical tree therefore receives the same
//!    `find_or_add_child` sequence as the sequential path, and
//!    first-appearance child ordering does the rest: identical arena,
//!    identical ids.
//!
//! Per-rank direct costs come back in shard-local node ids and are
//! remapped through the replay's local→canonical table before being
//! folded into the canonical totals, so [`ParallelCorrelator::correlate`]
//! returns the same `(Experiment, Vec<PerNodeCosts>)` a sequential
//! `add` loop plus `finish` would.

use crate::correlate::{Correlator, PerNodeCosts};
use callpath_core::prelude::*;
use callpath_profiler::{Counter, RawProfile};
use callpath_structure::Structure;

/// One worker's output: the shard-local CCT, the visit journal that
/// rebuilds it, and each rank's direct costs in shard-local node ids.
struct Shard {
    cct: Cct,
    journal: Vec<(NodeId, NodeId)>,
    per_rank: Vec<PerNodeCosts>,
}

/// Below this many profiles the journal/replay machinery costs more
/// than it saves; fall straight through to the sequential correlator.
pub const SHARD_CUTOVER: usize = 4;

/// How [`ParallelCorrelator::correlate`] will actually run for a given
/// input size: a plain sequential `add` loop, or sharded fan-out with
/// journal replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// One correlator fed rank-by-rank on the calling thread.
    Sequential,
    /// Contiguous rank shards on worker threads, merged by replay.
    Sharded,
}

impl IngestMode {
    /// Stable lowercase name, for bench records and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            IngestMode::Sequential => "sequential",
            IngestMode::Sharded => "sharded",
        }
    }
}

/// Sharded, deterministic parallel replacement for feeding N profiles
/// through one [`Correlator`].
pub struct ParallelCorrelator<'s> {
    structure: &'s Structure,
    periods: [u64; Counter::COUNT],
    threads: usize,
}

impl<'s> ParallelCorrelator<'s> {
    /// A parallel correlator choosing its worker count automatically.
    /// `periods` has the same meaning as for [`Correlator::new`].
    pub fn new(structure: &'s Structure, periods: [u64; Counter::COUNT]) -> Self {
        ParallelCorrelator {
            structure,
            periods,
            threads: 0,
        }
    }

    /// Use exactly `threads` workers (0 = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The mode [`Self::correlate`] picks for `n_profiles` inputs:
    /// sequential when only one worker would run or the input is below
    /// [`SHARD_CUTOVER`], sharded otherwise.
    pub fn mode_for(&self, n_profiles: usize) -> IngestMode {
        if resolve_threads(self.threads) <= 1 || n_profiles < SHARD_CUTOVER {
            IngestMode::Sequential
        } else {
            IngestMode::Sharded
        }
    }

    /// Correlate every profile (rank r = `profiles[r]`) and build the
    /// experiment. Returns the experiment plus each rank's direct
    /// per-node costs in canonical node ids — the same pair of results
    /// the sequential path produces, in the same order.
    pub fn correlate(
        &self,
        profiles: &[RawProfile],
        storage: StorageKind,
    ) -> (Experiment, Vec<PerNodeCosts>) {
        let _span = callpath_obs::span("prof.correlate");
        callpath_obs::count("prof.profiles_ingested", profiles.len() as u64);
        if self.mode_for(profiles.len()) == IngestMode::Sequential {
            // One worker (or a tiny input): the journal/replay round
            // trip is pure overhead, so feed a plain correlator.
            let mut corr = Correlator::new(self.structure, self.periods);
            let out: Vec<PerNodeCosts> = profiles.iter().map(|p| corr.add(p)).collect();
            return (corr.finish(storage), out);
        }

        // Fan out: contiguous rank chunks, one journaling correlator per
        // worker. chunked_map returns shards in ascending rank order.
        // Worker threads have no span context of their own, so each
        // shard nests explicitly under this call's span.
        let parent = callpath_obs::current();
        let shards: Vec<Shard> = chunked_map(profiles, self.threads, |_ci, batch| {
            let _span = callpath_obs::span_under(parent, "prof.shard_correlate");
            let mut corr = Correlator::with_journal(self.structure, self.periods);
            let per_rank: Vec<PerNodeCosts> = batch.iter().map(|p| corr.add(p)).collect();
            Shard {
                journal: corr.journal.take().unwrap_or_default(),
                cct: corr.cct,
                per_rank,
            }
        });

        // Reduce: replay each shard's journal against the canonical
        // correlator in rank order, then fold its costs through the
        // local→canonical remap.
        let _replay = callpath_obs::span("prof.merge_replay");
        let mut canon = Correlator::new(self.structure, self.periods);
        let mut out: Vec<PerNodeCosts> = Vec::with_capacity(profiles.len());
        for shard in shards {
            let mut remap: Vec<NodeId> = vec![NodeId(u32::MAX); shard.cct.len()];
            remap[shard.cct.root().index()] = canon.cct.root();
            for &(parent, child) in &shard.journal {
                let kind = shard.cct.kind(child);
                let canon_parent = remap[parent.index()];
                debug_assert_ne!(canon_parent.0, u32::MAX, "journal references unseen parent");
                remap[child.index()] = canon.cct.find_or_add_child(canon_parent, kind);
            }
            for costs in shard.per_rank {
                let mapped: PerNodeCosts = costs
                    .into_iter()
                    .map(|(n, cs)| (remap[n.index()], cs))
                    .collect();
                canon.fold_costs(&mapped);
                out.push(mapped);
            }
        }
        (canon.finish(storage), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{execute, lower, Costs, ExecConfig, Op, ProgramBuilder};
    use callpath_structure::recover;

    fn profiles_for(
        n_ranks: usize,
    ) -> (callpath_structure::Structure, Vec<RawProfile>, ExecConfig) {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let lib = b.file("lib.h");
        let helper = b.declare("helper", lib, 50);
        let work = b.declare("work", f, 10);
        let main = b.declare("main", f, 1);
        b.body(helper, vec![Op::work(51, Costs::cycles(4_000))]);
        b.body(
            work,
            vec![
                Op::looped(11, 8, vec![Op::work(12, Costs::cycles(2_000))]),
                Op::call_inline(14, helper),
            ],
        );
        b.body(
            main,
            vec![Op::call(2, work), Op::call_recursive(3, main, 2)],
        );
        b.entry(main);
        let bin = lower(&b.build());
        let cfg = ExecConfig {
            jitter_seed: Some(11),
            ..ExecConfig::single(Counter::Cycles, 509)
        };
        let profiles: Vec<RawProfile> = (0..n_ranks)
            .map(|r| {
                let rank_cfg = ExecConfig {
                    work_scale: 1.0 + r as f64 * 0.3,
                    jitter_seed: Some(11 + r as u64),
                    ..cfg.clone()
                };
                execute(&bin, &rank_cfg).unwrap().profile
            })
            .collect();
        (recover(&bin).unwrap(), profiles, cfg)
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (structure, profiles, cfg) = profiles_for(9);
        let mut seq = Correlator::new(&structure, cfg.periods);
        let seq_costs: Vec<PerNodeCosts> = profiles.iter().map(|p| seq.add(p)).collect();
        let seq_exp = seq.finish(StorageKind::Dense);

        for threads in [1, 2, 4, 8] {
            let (par_exp, par_costs) = ParallelCorrelator::new(&structure, cfg.periods)
                .with_threads(threads)
                .correlate(&profiles, StorageKind::Dense);
            assert_eq!(par_exp.cct.len(), seq_exp.cct.len(), "threads={threads}");
            for n in par_exp.cct.all_nodes() {
                assert_eq!(
                    par_exp.cct.kind(n),
                    seq_exp.cct.kind(n),
                    "threads={threads} node {n:?}"
                );
                assert_eq!(par_exp.cct.parent(n), seq_exp.cct.parent(n));
            }
            assert_eq!(par_costs, seq_costs, "threads={threads}");
            for c in seq_exp.columns.columns() {
                let a: Vec<(u32, f64)> = seq_exp.columns.vec(c).nonzero_sorted().collect();
                let b: Vec<(u32, f64)> = par_exp.columns.vec(c).nonzero_sorted().collect();
                assert_eq!(a, b, "threads={threads} column {c:?}");
            }
        }
    }

    #[test]
    fn mode_cuts_over_from_sequential_to_sharded() {
        let (structure, _, cfg) = profiles_for(1);
        let multi = ParallelCorrelator::new(&structure, cfg.periods).with_threads(4);
        assert_eq!(multi.mode_for(SHARD_CUTOVER - 1), IngestMode::Sequential);
        assert_eq!(multi.mode_for(SHARD_CUTOVER), IngestMode::Sharded);
        // A single worker never shards, whatever the input size.
        let single = ParallelCorrelator::new(&structure, cfg.periods).with_threads(1);
        assert_eq!(single.mode_for(1_000), IngestMode::Sequential);
    }

    #[test]
    fn small_inputs_fall_back_to_the_sequential_path() {
        // Below the cutover the fallback must still produce the exact
        // sequential result (it IS the sequential path).
        let (structure, profiles, cfg) = profiles_for(SHARD_CUTOVER - 1);
        let mut seq = Correlator::new(&structure, cfg.periods);
        let seq_costs: Vec<PerNodeCosts> = profiles.iter().map(|p| seq.add(p)).collect();
        let seq_exp = seq.finish(StorageKind::Dense);
        let par = ParallelCorrelator::new(&structure, cfg.periods).with_threads(8);
        assert_eq!(par.mode_for(profiles.len()), IngestMode::Sequential);
        let (par_exp, par_costs) = par.correlate(&profiles, StorageKind::Dense);
        assert_eq!(par_costs, seq_costs);
        assert_eq!(par_exp.cct.len(), seq_exp.cct.len());
    }

    #[test]
    fn csr_storage_round_trips_through_parallel_ingestion() {
        let (structure, profiles, cfg) = profiles_for(5);
        let (dense, _) = ParallelCorrelator::new(&structure, cfg.periods)
            .with_threads(2)
            .correlate(&profiles, StorageKind::Dense);
        let (csr, _) = ParallelCorrelator::new(&structure, cfg.periods)
            .with_threads(2)
            .correlate(&profiles, StorageKind::Csr);
        assert_eq!(csr.storage(), StorageKind::Csr);
        for c in dense.columns.columns() {
            let a: Vec<(u32, f64)> = dense.columns.vec(c).nonzero_sorted().collect();
            let b: Vec<(u32, f64)> = csr.columns.vec(c).nonzero_sorted().collect();
            assert_eq!(a, b, "column {c:?}");
        }
    }
}
