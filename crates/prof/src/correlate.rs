//! The correlation pass: raw profile trie × recovered structure →
//! canonical CCT with attributed direct costs.

use callpath_core::prelude::*;
use callpath_profiler::{Counter, RawNodeId, RawProfile, NO_CALL};
use callpath_structure::{Scope, Structure};

/// Direct costs one profile contributed, per CCT node, in counter order.
/// Sparse: only nodes with at least one non-zero counter appear.
pub type PerNodeCosts = Vec<(NodeId, [f64; Counter::COUNT])>;

/// Incremental correlator: builds one canonical CCT shared by every
/// profile added to it.
pub struct Correlator<'s> {
    structure: &'s Structure,
    pub(crate) cct: Cct,
    /// Per-procedure load module (library routines get their own).
    proc_modules: Vec<LoadModuleId>,
    files: Vec<FileId>,
    procs: Vec<ProcId>,
    /// Sampling periods used to convert sample counts to event costs.
    periods: [u64; Counter::COUNT],
    /// Accumulated direct costs over all profiles added so far, keyed by
    /// CCT node (hash map: rank counts × profile sizes make linear scans
    /// quadratic).
    pub(crate) totals: std::collections::HashMap<NodeId, [f64; Counter::COUNT]>,
    /// When enabled, an ordered `(parent, child)` visit log a parallel
    /// reduction replays to reproduce this correlator's node ids
    /// exactly (see `crate::parallel`).
    pub(crate) journal: Option<Vec<(NodeId, NodeId)>>,
    /// Pruned journals record only **first-appearance** edges — the
    /// calls that created `child`. Repeat visits find an existing node
    /// and replay to a no-op, so dropping them at record time shrinks
    /// the journal from O(visits) to O(nodes) without changing what it
    /// rebuilds. The unpruned variant exists only as the pre-pruning
    /// baseline the thread-scaling bench gates against.
    pub(crate) prune_journal: bool,
}

impl<'s> Correlator<'s> {
    /// `periods[c]` converts one sample of counter `c` into events. Use 0
    /// for counters that were not sampled (they are skipped entirely
    /// unless a profile carries direct event counts for them, e.g.
    /// injected idleness, which uses period 1).
    pub fn new(structure: &'s Structure, periods: [u64; Counter::COUNT]) -> Self {
        let mut names = NameTable::new();
        let main_module = names.module(&structure.module);
        let files: Vec<FileId> = structure.files.iter().map(|f| names.file(f)).collect();
        let procs: Vec<ProcId> = structure
            .procs
            .iter()
            .map(|p| names.proc(&p.name))
            .collect();
        let proc_modules: Vec<LoadModuleId> = structure
            .procs
            .iter()
            .map(|p| match &p.module {
                Some(m) => names.module(m),
                None => main_module,
            })
            .collect();
        // Pre-intern inlined callee names in deterministic structure
        // order. Interning them lazily during the walk (as descend_static
        // once did) would assign ids in visit order, which differs between
        // profiles — every correlator over the same structure must build
        // the identical name table or the parallel shards of
        // `crate::parallel::ParallelCorrelator` could not share scope
        // kinds by value.
        for p in &structure.procs {
            for node in &p.nodes {
                if let Scope::Inline { callee_name, .. } = &node.scope {
                    names.proc(callee_name);
                }
            }
        }
        Correlator {
            structure,
            cct: Cct::new(names),
            proc_modules,
            files,
            procs,
            periods,
            totals: std::collections::HashMap::new(),
            journal: None,
            prune_journal: true,
        }
    }

    /// A correlator that additionally records its (pruned) visit log,
    /// for use as a worker shard of the parallel reduction. Journaling
    /// shards skip the totals fold in [`Self::add`]: their totals are
    /// never read — the reduction folds remapped per-rank costs into
    /// the canonical totals itself.
    pub(crate) fn with_journal(structure: &'s Structure, periods: [u64; Counter::COUNT]) -> Self {
        let mut c = Self::new(structure, periods);
        c.journal = Some(Vec::new());
        c
    }

    /// [`Self::with_journal`] without pruning: every visit is recorded,
    /// repeats included. Only the pre-pruning replay baseline
    /// (`parallel::correlate_replay_baseline`) wants this.
    pub(crate) fn with_full_journal(
        structure: &'s Structure,
        periods: [u64; Counter::COUNT],
    ) -> Self {
        let mut c = Self::with_journal(structure, periods);
        c.prune_journal = false;
        c
    }

    /// `find_or_add_child` plus journaling.
    fn touch(&mut self, parent: NodeId, kind: ScopeKind) -> NodeId {
        let (child, created) = self.cct.find_or_add_child_tracked(parent, kind);
        if let Some(j) = &mut self.journal {
            if created || !self.prune_journal {
                j.push((parent, child));
            }
        }
        child
    }

    /// Fold pre-converted per-node costs into the running totals.
    pub(crate) fn fold_costs(&mut self, costs: &PerNodeCosts) {
        fold_costs_into(&mut self.totals, costs);
    }

    /// The canonical CCT built so far.
    pub fn cct(&self) -> &Cct {
        &self.cct
    }

    /// Correlate one raw profile into the shared CCT. Returns the direct
    /// costs (events = samples × period) this profile attributed per node.
    pub fn add(&mut self, profile: &RawProfile) -> PerNodeCosts {
        let mut out: PerNodeCosts = Vec::new();
        self.walk(profile, profile.root(), self.cct.root(), &mut out);
        // Journaling shards skip the fold: the parallel reduction
        // discards shard-local totals and folds the canonically
        // remapped costs itself, in global rank order, so f64 sums stay
        // bit-identical to the sequential path.
        if self.journal.is_none() {
            self.fold_costs(&out);
        }
        out
    }

    fn walk(
        &mut self,
        profile: &RawProfile,
        raw: RawNodeId,
        cct_parent: NodeId,
        out: &mut PerNodeCosts,
    ) {
        // Map each raw child frame into the CCT, interposing the static
        // scopes (loops, inlined bodies) that contain its call site.
        for child in profile.children(raw) {
            let call_addr = profile.call_addr(child);
            let callee = profile.callee(child);
            let callee_struct = &self.structure.procs[callee];
            let (anchor, call_site) = if call_addr == NO_CALL {
                (cct_parent, None)
            } else {
                let site = self.structure.line_of(call_addr);
                let anchor = self.descend_static(cct_parent, call_addr);
                (
                    anchor,
                    Some(SourceLoc::new(self.files[site.file], site.line)),
                )
            };
            let frame_kind = ScopeKind::Frame {
                proc: self.procs[callee],
                module: self.proc_modules[callee],
                def: SourceLoc::new(
                    self.files[callee_struct.file],
                    if callee_struct.has_source {
                        callee_struct.def_line
                    } else {
                        0
                    },
                ),
                call_site,
            };
            let frame_node = self.touch(anchor, frame_kind);
            self.walk(profile, child, frame_node, out);
        }
        // Map leaves: samples recorded at instructions within this frame.
        let leaves: Vec<(u64, [f64; Counter::COUNT])> = profile
            .leaves(raw)
            .iter()
            .map(|l| (l.addr, l.counts))
            .collect();
        for (addr, counts) in leaves {
            if raw == profile.root() {
                // Samples outside any frame (should not happen); attribute
                // to the root as unattributable cost.
                self.push_costs(cct_parent, counts, out);
                continue;
            }
            let anchor = self.descend_static(cct_parent, addr);
            let loc = self.structure.line_of(addr);
            let stmt = self.touch(
                anchor,
                ScopeKind::Stmt {
                    loc: SourceLoc::new(self.files[loc.file], loc.line),
                },
            );
            self.push_costs(stmt, counts, out);
        }
    }

    /// From a frame's CCT node, descend through the static scopes (loops,
    /// inline frames) containing `addr`, creating CCT nodes as needed, and
    /// return the innermost node.
    fn descend_static(&mut self, frame_node: NodeId, addr: u64) -> NodeId {
        let Some((proc, chain)) = self.structure.scope_chain(addr) else {
            return frame_node;
        };
        let mut cur = frame_node;
        for idx in chain {
            let node = &self.structure.procs[proc].nodes[idx];
            let kind = match &node.scope {
                Scope::Loop { header } => ScopeKind::Loop {
                    header: SourceLoc::new(self.files[header.file], header.line),
                },
                Scope::Inline {
                    callee_name,
                    callee_file,
                    callee_def_line,
                    call_site,
                } => {
                    let proc_id = self.cct.names.proc(callee_name);
                    ScopeKind::InlinedFrame {
                        proc: proc_id,
                        def: SourceLoc::new(self.files[*callee_file], *callee_def_line),
                        call_site: SourceLoc::new(self.files[call_site.file], call_site.line),
                    }
                }
            };
            cur = self.touch(cur, kind);
        }
        cur
    }

    fn push_costs(&self, node: NodeId, counts: [f64; Counter::COUNT], out: &mut PerNodeCosts) {
        let mut costs = [0.0; Counter::COUNT];
        let mut any = false;
        for c in Counter::ALL {
            let period = self.periods[c as usize];
            let count = counts[c as usize];
            if count != 0.0 && period > 0 {
                costs[c as usize] = count * period as f64;
                any = true;
            }
        }
        if any {
            out.push((node, costs));
        }
    }

    /// The metrics (in counter order) the finished experiment will carry:
    /// every counter with a non-zero period.
    pub fn active_counters(&self) -> Vec<Counter> {
        Counter::ALL
            .iter()
            .copied()
            .filter(|&c| self.periods[c as usize] > 0)
            .collect()
    }

    /// Build the experiment from everything added so far.
    pub fn finish(self, storage: StorageKind) -> Experiment {
        finish_parts(self.cct, self.totals, self.periods, storage)
    }
}

/// Fold pre-converted per-node costs into a running totals map, entry
/// by entry in vector order. Both the sequential correlator and the
/// parallel reduction fold through this one function so their f64
/// accumulation order — and therefore every rounded bit — is identical.
pub(crate) fn fold_costs_into(
    totals: &mut std::collections::HashMap<NodeId, [f64; Counter::COUNT]>,
    costs: &PerNodeCosts,
) {
    for &(n, cs) in costs {
        let t = totals.entry(n).or_insert([0.0; Counter::COUNT]);
        for i in 0..Counter::COUNT {
            t[i] += cs[i];
        }
    }
}

/// Assemble an [`Experiment`] from a finished CCT plus accumulated
/// totals — the back half of [`Correlator::finish`], split out so the
/// parallel reduction can build the experiment from a merged CCT it
/// folded totals into itself.
pub(crate) fn finish_parts(
    cct: Cct,
    totals: std::collections::HashMap<NodeId, [f64; Counter::COUNT]>,
    periods: [u64; Counter::COUNT],
    storage: StorageKind,
) -> Experiment {
    let mut raw = RawMetrics::new(storage);
    let active: Vec<Counter> = Counter::ALL
        .iter()
        .copied()
        .filter(|&c| periods[c as usize] > 0)
        .collect();
    let metric_ids: Vec<MetricId> = active
        .iter()
        .map(|&c| {
            raw.add_metric(MetricDesc::new(
                c.papi_name(),
                c.unit(),
                periods[c as usize] as f64,
            ))
        })
        .collect();
    // Deterministic insertion independent of hash order; the batched
    // per-metric write walks nodes ascending, which is the columnar
    // store's append fast path.
    let mut totals: Vec<(NodeId, [f64; Counter::COUNT])> = totals.into_iter().collect();
    totals.sort_unstable_by_key(|(n, _)| *n);
    let mut batch: Vec<(NodeId, f64)> = Vec::with_capacity(totals.len());
    for (mi, &c) in active.iter().enumerate() {
        batch.clear();
        batch.extend(totals.iter().filter_map(|&(node, costs)| {
            let v = costs[c as usize];
            (v != 0.0).then_some((node, v))
        }));
        raw.add_costs(metric_ids[mi], &batch);
    }
    Experiment::build(cct, raw, storage)
}

/// One-shot correlation of a single profile.
pub fn correlate(
    structure: &Structure,
    profile: &RawProfile,
    periods: [u64; Counter::COUNT],
    storage: StorageKind,
) -> Experiment {
    let _span = callpath_obs::span("prof.correlate");
    callpath_obs::count("prof.profiles_ingested", 1);
    let mut c = Correlator::new(structure, periods);
    c.add(profile);
    c.finish(storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{execute, lower, Costs, ExecConfig, Op, ProgramBuilder};
    use callpath_structure::recover;

    /// End-to-end pipeline helper: program → binary → run → structure →
    /// correlate.
    fn pipeline(
        build: impl FnOnce(&mut ProgramBuilder),
        cfg: &ExecConfig,
    ) -> (Experiment, callpath_profiler::ExecResult) {
        let mut b = ProgramBuilder::new("app");
        build(&mut b);
        let bin = lower(&b.build());
        let res = execute(&bin, cfg).unwrap();
        let s = recover(&bin).unwrap();
        let exp = correlate(&s, &res.profile, cfg.periods, StorageKind::Dense);
        (exp, res)
    }

    fn cycles_cfg(period: u64) -> ExecConfig {
        ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, period)
        }
    }

    #[test]
    fn frame_chain_is_reconstructed() {
        let (exp, _) = pipeline(
            |b| {
                let f = b.file("a.c");
                let main = b.declare("main", f, 1);
                let work = b.declare("work", f, 10);
                b.body(main, vec![Op::call(2, work)]);
                b.body(work, vec![Op::work(11, Costs::cycles(50_000))]);
                b.entry(main);
            },
            &cycles_cfg(1000),
        );
        let root = exp.cct.root();
        let mains: Vec<NodeId> = exp.cct.children(root).collect();
        assert_eq!(mains.len(), 1);
        assert_eq!(exp.cct.kind(mains[0]).label(&exp.cct.names), "main");
        let works: Vec<NodeId> = exp.cct.children(mains[0]).collect();
        assert_eq!(works.len(), 1);
        assert_eq!(exp.cct.kind(works[0]).label(&exp.cct.names), "work");
        // 50 samples * 1000-cycle period = the full measured cost.
        let incl = exp.inclusive_col(MetricId(0));
        assert_eq!(exp.columns.get(incl, root.0), 50_000.0);
        assert_eq!(exp.columns.get(incl, mains[0].0), 50_000.0);
    }

    #[test]
    fn loops_are_interposed_between_frames() {
        let (exp, _) = pipeline(
            |b| {
                let f = b.file("integrate.f90");
                let rhsf = b.declare("rhsf", f, 200);
                let main = b.declare("integrate", f, 80);
                b.body(rhsf, vec![Op::work(201, Costs::cycles(1_000))]);
                b.body(main, vec![Op::looped(82, 50, vec![Op::call(83, rhsf)])]);
                b.entry(main);
            },
            &cycles_cfg(100),
        );
        // Expected CCT spine: integrate -> loop@82 -> rhsf -> stmt.
        let root = exp.cct.root();
        let integrate = exp.cct.children(root).next().unwrap();
        let kids: Vec<NodeId> = exp.cct.children(integrate).collect();
        assert_eq!(kids.len(), 1);
        assert!(
            exp.cct.kind(kids[0]).is_loop(),
            "the call is nested inside the loop: {:?}",
            exp.cct.kind(kids[0])
        );
        let in_loop: Vec<NodeId> = exp.cct.children(kids[0]).collect();
        assert_eq!(exp.cct.kind(in_loop[0]).label(&exp.cct.names), "rhsf");
        // The loop's inclusive cost equals the whole execution; its
        // exclusive cost is zero (all work is in the callee).
        let incl = exp.inclusive_col(MetricId(0));
        let excl = exp.exclusive_col(MetricId(0));
        assert_eq!(exp.columns.get(incl, kids[0].0), 50_000.0);
        assert_eq!(exp.columns.get(excl, kids[0].0), 0.0);
    }

    #[test]
    fn inlined_code_appears_as_inlined_frames() {
        let (exp, _) = pipeline(
            |b| {
                let f1 = b.file("mesh.cc");
                let f2 = b.file("lib.h");
                let memset = b.declare("fast_memset", f2, 100);
                let create = b.declare("create", f1, 40);
                b.body(memset, vec![Op::work(101, Costs::memory(10_000, 300))]);
                b.body(create, vec![Op::call_inline(44, memset)]);
                b.entry(create);
            },
            &cycles_cfg(100),
        );
        let root = exp.cct.root();
        let create = exp.cct.children(root).next().unwrap();
        let kids: Vec<NodeId> = exp.cct.children(create).collect();
        assert_eq!(kids.len(), 1);
        match exp.cct.kind(kids[0]) {
            ScopeKind::InlinedFrame {
                proc, call_site, ..
            } => {
                assert_eq!(exp.cct.names.proc_name(proc), "fast_memset");
                assert_eq!(call_site.line, 44);
            }
            other => panic!("expected inlined frame, got {other:?}"),
        }
    }

    #[test]
    fn recursion_produces_distinct_contexts() {
        let (exp, _) = pipeline(
            |b| {
                let f = b.file("file2.c");
                let g = b.declare("g", f, 2);
                b.body(
                    g,
                    vec![
                        Op::work(3, Costs::cycles(10_000)),
                        Op::call_recursive(4, g, 3),
                    ],
                );
                b.entry(g);
            },
            &cycles_cfg(100),
        );
        // g1 -> g2 -> g3, each a separate CCT frame.
        let root = exp.cct.root();
        let g1 = exp.cct.children(root).next().unwrap();
        let g2 = exp
            .cct
            .children(g1)
            .find(|&n| exp.cct.kind(n).frame_proc().is_some())
            .unwrap();
        let g3 = exp
            .cct
            .children(g2)
            .find(|&n| exp.cct.kind(n).frame_proc().is_some())
            .unwrap();
        let incl = exp.inclusive_col(MetricId(0));
        assert_eq!(exp.columns.get(incl, g1.0), 30_000.0);
        assert_eq!(exp.columns.get(incl, g2.0), 20_000.0);
        assert_eq!(exp.columns.get(incl, g3.0), 10_000.0);
    }

    #[test]
    fn merging_two_ranks_sums_costs() {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let main = b.declare("main", f, 1);
        b.body(main, vec![Op::work(2, Costs::cycles(10_000))]);
        b.entry(main);
        let bin = lower(&b.build());
        let cfg = cycles_cfg(100);
        let r0 = execute(&bin, &cfg).unwrap();
        let r1 = execute(
            &bin,
            &ExecConfig {
                work_scale: 2.0,
                ..cfg.clone()
            },
        )
        .unwrap();
        let s = recover(&bin).unwrap();
        let mut corr = Correlator::new(&s, cfg.periods);
        let c0 = corr.add(&r0.profile);
        let c1 = corr.add(&r1.profile);
        assert!(!c0.is_empty() && !c1.is_empty());
        let exp = corr.finish(StorageKind::Dense);
        let incl = exp.inclusive_col(MetricId(0));
        assert_eq!(exp.columns.get(incl, exp.cct.root().0), 30_000.0);
        // Per-profile costs are reported separately and sum to the total.
        let t0: f64 = c0.iter().map(|(_, c)| c[Counter::Cycles as usize]).sum();
        let t1: f64 = c1.iter().map(|(_, c)| c[Counter::Cycles as usize]).sum();
        assert_eq!(t0, 10_000.0);
        assert_eq!(t1, 20_000.0);
    }

    #[test]
    fn multiple_counters_attribute_independently() {
        let mut cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::default()
        };
        cfg.periods = [0; Counter::COUNT];
        cfg.periods[Counter::Cycles as usize] = 1000;
        cfg.periods[Counter::L1DcMisses as usize] = 10;
        let (exp, _) = pipeline(
            |b| {
                let f = b.file("a.c");
                let main = b.declare("main", f, 1);
                b.body(main, vec![Op::work(2, Costs::memory(100_000, 5_000))]);
                b.entry(main);
            },
            &cfg,
        );
        assert_eq!(exp.raw.metric_count(), 2);
        assert_eq!(exp.raw.descs()[0].name, "PAPI_TOT_CYC");
        assert_eq!(exp.raw.descs()[1].name, "PAPI_L1_DCM");
        let root = exp.cct.root();
        assert_eq!(
            exp.columns.get(exp.inclusive_col(MetricId(0)), root.0),
            100_000.0
        );
        assert_eq!(
            exp.columns.get(exp.inclusive_col(MetricId(1)), root.0),
            5_000.0
        );
    }

    #[test]
    fn sampled_profile_approximates_ground_truth() {
        // With jitter on, the sampled attribution converges to truth
        // within statistical error.
        let cfg = ExecConfig {
            jitter_seed: Some(7),
            ..ExecConfig::single(Counter::Cycles, 1009)
        };
        let (exp, res) = pipeline(
            |b| {
                let f = b.file("a.c");
                let main = b.declare("main", f, 1);
                let hot = b.declare("hot", f, 10);
                let cold = b.declare("cold", f, 20);
                b.body(main, vec![Op::call(2, hot), Op::call(3, cold)]);
                b.body(hot, vec![Op::work(11, Costs::cycles(9_000_000))]);
                b.body(cold, vec![Op::work(21, Costs::cycles(1_000_000))]);
                b.entry(main);
            },
            &cfg,
        );
        let truth = res.totals[Counter::Cycles] as f64;
        let incl = exp.inclusive_col(MetricId(0));
        let measured = exp.columns.get(incl, exp.cct.root().0);
        assert!(
            (measured - truth).abs() / truth < 0.01,
            "measured {measured} vs truth {truth}"
        );
        // hot:cold ratio should be ~9:1.
        let root = exp.cct.root();
        let main = exp.cct.children(root).next().unwrap();
        let frames: Vec<NodeId> = exp
            .cct
            .children(main)
            .filter(|&n| matches!(exp.cct.kind(n), ScopeKind::Frame { .. }))
            .collect();
        let hot_v = exp.columns.get(incl, frames[0].0);
        let cold_v = exp.columns.get(incl, frames[1].0);
        let ratio = hot_v / cold_v;
        assert!((ratio - 9.0).abs() < 1.0, "ratio {ratio}");
    }
}
