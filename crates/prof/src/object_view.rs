//! Object-code presentation: metrics correlated with instructions
//! (the paper's Section IX ongoing work — "effectively presenting
//! metrics correlated with object code. Although HPCTOOLKIT supports a
//! simple text-based presentation of such information, it is cumbersome
//! to use").
//!
//! Samples in a raw profile land on instruction addresses; this module
//! aggregates them per address (across all calling contexts) and renders
//! a disassembly-style listing for a procedure: address, mnemonic-ish
//! text, source line, and per-counter sample costs. The viewer-level
//! discipline carries over: zero cells are blank and the listing is
//! sorted by address (object code reads in address order, not metric
//! order).

use callpath_profiler::{Addr, Binary, Counter, InstrKind, RawProfile};
use std::collections::HashMap;

/// Aggregated per-instruction costs for one procedure.
#[derive(Debug, Clone)]
pub struct ObjectLine {
    /// Instruction address.
    pub addr: Addr,
    /// Rendered instruction text.
    pub text: String,
    /// Source file name + line.
    pub file: String,
    /// Source line.
    pub line: u32,
    /// Sample counts per counter, summed over all calling contexts.
    pub counts: [f64; Counter::COUNT],
}

/// The object-level view of one procedure.
#[derive(Debug, Clone)]
pub struct ObjectView {
    /// The procedure presented.
    pub proc_name: String,
    /// One row per instruction, in address order.
    pub lines: Vec<ObjectLine>,
}

fn mnemonic(binary: &Binary, kind: &InstrKind) -> String {
    match kind {
        InstrKind::Work { costs, scalable } => {
            let mut parts = Vec::new();
            if costs[Counter::FpOps] > 0 {
                parts.push("fp");
            }
            if costs[Counter::L1DcMisses] > 0 {
                parts.push("mem");
            }
            if parts.is_empty() {
                parts.push("alu");
            }
            if !*scalable {
                parts.push("serial");
            }
            format!("work.{}", parts.join("."))
        }
        InstrKind::Call { callee, max_active } => {
            let guard = if max_active.is_some() {
                " (guarded)"
            } else {
                ""
            };
            format!("call {}{guard}", binary.procs[*callee].name)
        }
        InstrKind::Branch { target, trips } => format!("loop.b {target} x{trips}"),
        InstrKind::Barrier { id } => format!("barrier {id}"),
        InstrKind::Ret => "ret".to_owned(),
    }
}

/// Build the object view of the procedure named `proc_name`.
///
/// Returns `None` when the binary has no such procedure. Sample counts
/// are folded over every context in the profile (the flat-view semantics,
/// at instruction granularity).
pub fn object_view(binary: &Binary, profile: &RawProfile, proc_name: &str) -> Option<ObjectView> {
    let pi = binary.procs.iter().position(|p| p.name == proc_name)?;
    let bounds = &binary.procs[pi];

    // Fold all sample leaves by address.
    let mut by_addr: HashMap<Addr, [f64; Counter::COUNT]> = HashMap::new();
    let mut stack = vec![profile.root()];
    while let Some(n) = stack.pop() {
        for leaf in profile.leaves(n) {
            if leaf.addr >= bounds.lo && leaf.addr < bounds.hi {
                let acc = by_addr.entry(leaf.addr).or_insert([0.0; Counter::COUNT]);
                for c in Counter::ALL {
                    acc[c as usize] += leaf.counts[c as usize];
                }
            }
        }
        stack.extend(profile.children(n));
    }

    let lines = (bounds.lo..bounds.hi)
        .map(|addr| {
            let instr = binary.instr(addr);
            ObjectLine {
                addr,
                text: mnemonic(binary, &instr.kind),
                file: binary.files[instr.loc.file].clone(),
                line: instr.loc.line,
                counts: by_addr.get(&addr).copied().unwrap_or([0.0; Counter::COUNT]),
            }
        })
        .collect();
    Some(ObjectView {
        proc_name: proc_name.to_owned(),
        lines,
    })
}

/// Render the listing with the counters that have any samples.
pub fn render_object_view(view: &ObjectView, periods: &[u64; Counter::COUNT]) -> String {
    // Only show counters with samples somewhere in the procedure.
    let active: Vec<Counter> = Counter::ALL
        .iter()
        .copied()
        .filter(|&c| view.lines.iter().any(|l| l.counts[c as usize] != 0.0))
        .collect();
    let mut out = format!("object view of {}\n", view.proc_name);
    out.push_str(&format!(
        "{:>8}  {:<28} {:<22}",
        "addr", "instruction", "source"
    ));
    for &c in &active {
        out.push_str(&format!(" {:>14}", c.papi_name()));
    }
    out.push('\n');
    for l in &view.lines {
        out.push_str(&format!(
            "{:>8}  {:<28} {:<22}",
            format!("0x{:04x}", l.addr),
            l.text,
            format!("{}:{}", l.file, l.line)
        ));
        for &c in &active {
            let events = l.counts[c as usize] * periods[c as usize] as f64;
            let cell = if events == 0.0 {
                String::new()
            } else {
                format!("{events:.2e}")
            };
            out.push_str(&format!(" {cell:>14}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{execute, lower, Costs, ExecConfig, Op, ProgramBuilder};

    fn setup() -> (Binary, callpath_profiler::ExecResult) {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let work = b.declare("hotproc", f, 10);
        let main = b.declare("main", f, 1);
        b.body(
            work,
            vec![
                Op::work(11, Costs::compute(40_000, 4.0, 0.5)),
                Op::looped(12, 8, vec![Op::work(13, Costs::memory(5_000, 300))]),
            ],
        );
        b.body(main, vec![Op::call(3, work)]);
        b.entry(main);
        let bin = lower(&b.build());
        let cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 100)
        };
        let res = execute(&bin, &cfg).unwrap();
        (bin, res)
    }

    #[test]
    fn samples_fold_onto_instructions() {
        let (bin, res) = setup();
        let view = object_view(&bin, &res.profile, "hotproc").unwrap();
        // hotproc: work, work(loop body), branch, ret = 4 instructions.
        assert_eq!(view.lines.len(), 4);
        let total: f64 = view
            .lines
            .iter()
            .map(|l| l.counts[Counter::Cycles as usize])
            .sum();
        // 20k cycles + 8*5k = 60k cycles at period 100 => 600 samples.
        assert_eq!(total, 600.0);
        // The loop-body instruction carries 40k/100 = 400 of them.
        let body = view.lines.iter().find(|l| l.line == 13).unwrap();
        assert_eq!(body.counts[Counter::Cycles as usize], 400.0);
        assert!(body.text.starts_with("work.mem"));
    }

    #[test]
    fn rendering_is_address_ordered_with_blank_zeros() {
        let (bin, res) = setup();
        let view = object_view(&bin, &res.profile, "hotproc").unwrap();
        let cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 100)
        };
        let text = render_object_view(&view, &cfg.periods);
        assert!(text.contains("object view of hotproc"));
        // Address order: the work at line 11 precedes the loop body.
        let l11 = text.find("a.c:11").unwrap();
        let l13 = text.find("a.c:13").unwrap();
        assert!(l11 < l13);
        // Control instructions show but have no samples (blank cells).
        let ret_row = text.lines().find(|l| l.contains("ret")).unwrap();
        assert!(!ret_row.contains("e+"), "blank, not zero: {ret_row}");
        // Unsampled counters are not shown as columns.
        assert!(!text.contains("PAPI_L1_DCM"), "{text}");
    }

    #[test]
    fn unknown_procedure_is_none() {
        let (bin, res) = setup();
        assert!(object_view(&bin, &res.profile, "nope").is_none());
    }

    #[test]
    fn context_folding_spans_multiple_callers() {
        // A procedure called from two places: its object view sums both.
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        let shared = b.declare("shared", f, 10);
        let a = b.declare("a", f, 20);
        let c = b.declare("c", f, 30);
        let main = b.declare("main", f, 1);
        b.body(shared, vec![Op::work(11, Costs::cycles(10_000))]);
        b.body(a, vec![Op::call(21, shared)]);
        b.body(c, vec![Op::call(31, shared)]);
        b.body(main, vec![Op::call(2, a), Op::call(3, c)]);
        b.entry(main);
        let bin = lower(&b.build());
        let cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 100)
        };
        let res = execute(&bin, &cfg).unwrap();
        let view = object_view(&bin, &res.profile, "shared").unwrap();
        let total: f64 = view
            .lines
            .iter()
            .map(|l| l.counts[Counter::Cycles as usize])
            .sum();
        assert_eq!(total, 200.0, "both contexts folded");
    }
}
