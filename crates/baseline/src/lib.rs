#![warn(missing_docs)]
//! # callpath-baseline
//!
//! A gprof-style flat profiler — the comparison baseline from the paper's
//! related work (Section VIII; gprof is the canonical tabular profiler
//! that "supports the Calling Context View with inclusive and exclusive
//! metrics" only in the degenerate one-level sense).
//!
//! gprof's model:
//!
//! * **flat profile**: per-procedure self time from PC sampling, plus
//!   exact call counts from `mcount` instrumentation;
//! * **call graph**: per-arc call counts, with descendant time
//!   *estimated* by distributing each callee's total time to its callers
//!   **in proportion to call counts** — the famous context-insensitive
//!   approximation (Varley 1993, the paper's reference \[16\], documents
//!   its practical limitations).
//!
//! The `baseline_contrast` integration test shows exactly where this
//! breaks: when the same procedure is cheap from one caller and expensive
//! from another, gprof splits the cost by call count while the CCT views
//! report the truth.

pub mod gprof;

pub use gprof::{analyze, render, ArcEntry, FlatEntry, GprofReport};
