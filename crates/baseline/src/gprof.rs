//! The gprof algorithm: flat profile + call-count-proportional time
//! propagation.

use callpath_profiler::{Binary, Counter, ExecResult};

/// One row of the flat profile.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatEntry {
    /// Procedure index in the binary.
    pub proc: usize,
    /// Procedure name.
    pub name: String,
    /// Self cost (sampled cycles attributed to the procedure's own
    /// instructions, context-blind).
    pub self_cycles: f64,
    /// Estimated total cost: self + call-count-proportional share of
    /// callees' totals.
    pub total_cycles: f64,
    /// Times called (exact, from instrumentation).
    pub calls: u64,
}

/// One call-graph arc.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcEntry {
    /// Calling procedure index.
    pub caller: usize,
    /// Called procedure index.
    pub callee: usize,
    /// Exact number of calls along this arc.
    pub count: u64,
    /// The callee (total) time gprof attributes to this caller:
    /// `total(callee) × count / total_calls(callee)`.
    pub attributed_cycles: f64,
}

/// A complete gprof-style report.
#[derive(Debug, Clone)]
pub struct GprofReport {
    /// Flat entries, sorted by self time descending.
    pub flat: Vec<FlatEntry>,
    /// Arcs, sorted by (caller, callee).
    pub arcs: Vec<ArcEntry>,
}

impl GprofReport {
    /// Flat entry by procedure name.
    pub fn entry(&self, name: &str) -> Option<&FlatEntry> {
        self.flat.iter().find(|e| e.name == name)
    }

    /// Arcs into `callee_name`, with the attributed share of its time.
    pub fn callers_of(&self, callee_name: &str) -> Vec<&ArcEntry> {
        let Some(callee) = self.flat.iter().find(|e| e.name == callee_name) else {
            return Vec::new();
        };
        self.arcs
            .iter()
            .filter(|a| a.callee == callee.proc)
            .collect()
    }
}

/// Build the gprof report from an execution: PC samples give self time,
/// instrumented arcs give call counts, and descendant time is estimated by
/// proportional distribution.
pub fn analyze(binary: &Binary, exec: &ExecResult, cycle_period: u64) -> GprofReport {
    let n = binary.procs.len();
    // Self time: fold every sample onto the procedure that owns the
    // sampled instruction — all calling context is discarded, exactly what
    // a flat PC-sampling profiler sees.
    let mut self_cycles = vec![0.0f64; n];
    let mut stack = vec![exec.profile.root()];
    while let Some(node) = stack.pop() {
        for leaf in exec.profile.leaves(node) {
            if let Some(p) = binary.proc_at(leaf.addr) {
                self_cycles[p] += leaf.counts[Counter::Cycles as usize] * cycle_period as f64;
            }
        }
        stack.extend(exec.profile.children(node));
    }

    // Call counts.
    let mut calls = vec![0u64; n];
    let mut in_arcs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n]; // callee -> [(caller, count)]
    let mut out_arcs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (&(caller, callee), &count) in &exec.call_arcs {
        calls[callee] += count;
        if caller != callee {
            in_arcs[callee].push((caller, count));
            out_arcs[caller].push((callee, count));
        }
        // Self-arcs (direct recursion) are dropped from propagation, as
        // gprof collapses recursive cycles.
    }
    calls[binary.entry] += 1; // the initial activation

    // Total-time estimation: total(p) = self(p) + Σ_c total(c) * share.
    // Fixed-point iteration handles arbitrary DAGs (and converges for the
    // cycles we allow, since shares along any cycle are < 1 once self-arcs
    // are dropped).
    let mut total: Vec<f64> = self_cycles.clone();
    for _ in 0..100 {
        let mut next = self_cycles.clone();
        for p in 0..n {
            for &(callee, count) in &out_arcs[p] {
                let callee_calls: u64 = in_arcs[callee].iter().map(|&(_, c)| c).sum();
                if callee_calls > 0 {
                    next[p] += total[callee] * count as f64 / callee_calls as f64;
                }
            }
        }
        let delta: f64 = next
            .iter()
            .zip(total.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        total = next;
        if delta < 1e-9 {
            break;
        }
    }

    let mut flat: Vec<FlatEntry> = (0..n)
        .map(|p| FlatEntry {
            proc: p,
            name: binary.procs[p].name.clone(),
            self_cycles: self_cycles[p],
            total_cycles: total[p],
            calls: calls[p],
        })
        .filter(|e| e.self_cycles > 0.0 || e.calls > 0)
        .collect();
    flat.sort_by(|a, b| {
        b.self_cycles
            .partial_cmp(&a.self_cycles)
            .unwrap()
            .then_with(|| a.name.cmp(&b.name))
    });

    let mut arcs: Vec<ArcEntry> = exec
        .call_arcs
        .iter()
        .map(|(&(caller, callee), &count)| {
            let callee_calls: u64 = in_arcs[callee].iter().map(|&(_, c)| c).sum();
            let attributed = if caller != callee && callee_calls > 0 {
                total[callee] * count as f64 / callee_calls as f64
            } else {
                0.0
            };
            ArcEntry {
                caller,
                callee,
                count,
                attributed_cycles: attributed,
            }
        })
        .collect();
    arcs.sort_by_key(|a| (a.caller, a.callee));

    GprofReport { flat, arcs }
}

/// Render the report in gprof's classic textual style.
pub fn render(report: &GprofReport, binary: &Binary) -> String {
    let total: f64 = report.flat.iter().map(|e| e.self_cycles).sum();
    let mut out = String::from("Flat profile (cycles):\n");
    out.push_str("  %time        self       total      calls  name\n");
    for e in &report.flat {
        let pct = if total > 0.0 {
            100.0 * e.self_cycles / total
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:5.1}  {:>10.3e}  {:>10.3e}  {:>9}  {}\n",
            pct, e.self_cycles, e.total_cycles, e.calls, e.name
        ));
    }
    out.push_str("\nCall graph arcs:\n");
    for a in &report.arcs {
        out.push_str(&format!(
            "  {} -> {}  x{}  (attributed {:.3e})\n",
            binary.procs[a.caller].name, binary.procs[a.callee].name, a.count, a.attributed_cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use callpath_profiler::{execute, lower, Costs, ExecConfig, Op, ProgramBuilder};

    /// f calls work 9 times cheaply; m calls work once expensively — the
    /// classic case gprof mis-attributes.
    fn asymmetric() -> (Binary, ExecResult) {
        let mut b = ProgramBuilder::new("app");
        let f = b.file("a.c");
        // `work` costs what its argument says; our simulator has no
        // arguments, so model it with two distinct work chunks selected by
        // the caller through loop counts around a single cheap body.
        let work = b.declare("work", f, 30);
        let cheap_caller = b.declare("cheap_caller", f, 10);
        let hot_caller = b.declare("hot_caller", f, 20);
        let main = b.declare("main", f, 1);
        b.body(work, vec![Op::work(31, Costs::cycles(1_000))]);
        // cheap: 9 calls, each 1k cycles of work => 9k cycles in work.
        b.body(
            cheap_caller,
            vec![Op::looped(12, 9, vec![Op::call(13, work)])],
        );
        // hot: 1 call, but loops *inside* its own body 91 times around the
        // call => 91k cycles of work from 91 calls... to keep call counts
        // asymmetric, call work once but then burn the rest locally.
        b.body(
            hot_caller,
            vec![
                Op::call(22, work),
                Op::work(
                    23,
                    Costs::cycles(0).with(callpath_profiler::Counter::Cycles, 1),
                ),
            ],
        );
        b.body(
            main,
            vec![Op::call(3, cheap_caller), Op::call(4, hot_caller)],
        );
        b.entry(main);
        let bin = lower(&b.build());
        let cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 1)
        };
        let res = execute(&bin, &cfg).unwrap();
        (bin, res)
    }

    #[test]
    fn self_time_matches_ground_truth() {
        let (bin, res) = asymmetric();
        let report = analyze(&bin, &res, 1);
        let work = report.entry("work").unwrap();
        assert_eq!(work.self_cycles, 10_000.0, "9 + 1 calls x 1k cycles");
        assert_eq!(work.calls, 10);
    }

    #[test]
    fn propagation_is_call_count_proportional() {
        let (bin, res) = asymmetric();
        let report = analyze(&bin, &res, 1);
        let callers = report.callers_of("work");
        assert_eq!(callers.len(), 2);
        let cheap = callers
            .iter()
            .find(|a| bin.procs[a.caller].name == "cheap_caller")
            .unwrap();
        let hot = callers
            .iter()
            .find(|a| bin.procs[a.caller].name == "hot_caller")
            .unwrap();
        // gprof splits work's 10k cycles 9:1 by call count — regardless of
        // what each context actually cost.
        assert_eq!(cheap.count, 9);
        assert_eq!(hot.count, 1);
        assert!((cheap.attributed_cycles - 9_000.0).abs() < 1e-6);
        assert!((hot.attributed_cycles - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn totals_flow_to_main() {
        let (bin, res) = asymmetric();
        let report = analyze(&bin, &res, 1);
        let main = report.entry("main").unwrap();
        let truth = res.totals[Counter::Cycles] as f64;
        assert!(
            (main.total_cycles - truth).abs() / truth < 0.01,
            "main total {} vs truth {}",
            main.total_cycles,
            truth
        );
    }

    #[test]
    fn recursion_does_not_diverge() {
        let mut b = ProgramBuilder::new("rec");
        let f = b.file("r.c");
        let g = b.declare("g", f, 2);
        b.body(
            g,
            vec![Op::work(3, Costs::cycles(100)), Op::call_recursive(4, g, 5)],
        );
        b.entry(g);
        let bin = lower(&b.build());
        let cfg = ExecConfig {
            jitter_seed: None,
            ..ExecConfig::single(Counter::Cycles, 1)
        };
        let res = execute(&bin, &cfg).unwrap();
        let report = analyze(&bin, &res, 1);
        let g_entry = report.entry("g").unwrap();
        assert_eq!(g_entry.self_cycles, 500.0);
        assert!(g_entry.total_cycles.is_finite());
        assert_eq!(g_entry.calls, 5, "4 recursive + 1 initial");
    }

    #[test]
    fn render_contains_flat_and_arcs() {
        let (bin, res) = asymmetric();
        let report = analyze(&bin, &res, 1);
        let text = render(&report, &bin);
        assert!(text.contains("Flat profile"));
        assert!(text.contains("work"));
        assert!(text.contains("cheap_caller -> work  x9"));
    }
}
